#include "src/trace/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace sat {

namespace {

// Exporter metadata: display name plus labels for the `a`/`b` payloads.
struct TypeInfo {
  const char* name;
  const char* a_label;
  const char* b_label;
};

constexpr TypeInfo kTypeInfo[kTraceEventTypeCount] = {
    {"fork", "child_pid", "ptes_copied"},
    {"exec", "pid", ""},
    {"exit", "pid", ""},
    {"context_switch", "asid", "core"},
    {"share_slot", "slot", "ptes_write_protected"},
    {"unshare_slot", "slot", "ptes_copied"},
    {"fault_file", "va_page", "ptes_faulted_around"},
    {"fault_anon", "va_page", ""},
    {"fault_cow", "va_page", "ptes_copied"},
    {"fault_hard", "va_page", ""},
    {"fault_segv", "va_page", ""},
    {"fault_oom", "va_page", ""},
    {"domain_fault", "va_page", "domain"},
    {"tlb_shootdown", "payload", "cpu_mask"},
    {"tlb_ipi", "target_core", ""},
    {"tlb_flush", "kind", "entries_flushed"},
    {"reclaim_pass", "target_pages", "pages_reclaimed"},
    {"reclaim_page", "frame", "ptes_cleared"},
    {"direct_reclaim", "pages_reclaimed", "free_frames"},
    {"oom_kill", "victim_pid", "victim_rss_pages"},
    {"swap_out", "frame", "slot"},
    {"swap_in", "va_page", "cache_hit"},
    {"kswapd", "pages_freed", "free_frames"},
    {"ksm_scan", "pages_scanned", "pages_merged"},
    {"ksm_merge", "va_page", "stable_frame"},
    {"ksm_unmerge", "va_page", "stable_frame"},
    {"huge_collapse", "va_page", "migrated"},
    {"huge_split", "va_page", "reason"},
    {"app_phase", "phase", ""},
};

constexpr const char* kAppPhaseNames[] = {"run",    "fork_app", "map",
                                          "replay", "launch",   "window"};

}  // namespace

const char* TraceEventTypeName(TraceEventType type) {
  const auto index = static_cast<size_t>(type);
  return index < kTraceEventTypeCount ? kTypeInfo[index].name : "?";
}

const char* AppPhaseName(AppPhase phase) {
  const auto index = static_cast<size_t>(phase);
  return index < std::size(kAppPhaseNames) ? kAppPhaseNames[index] : "?";
}

void LatencyHistogram::Record(Cycles duration) {
  if (count_ == 0 || duration < min_) min_ = duration;
  if (duration > max_) max_ = duration;
  sum_ += duration;
  ++count_;
  ++buckets_[BucketOf(duration)];
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint32_t LatencyHistogram::BucketOf(Cycles duration) {
  // Bucket 0 holds zero-length samples; bucket i (i >= 1) holds durations
  // in [2^(i-1), 2^i).
  uint32_t bucket = 0;
  while (duration != 0) {
    duration >>= 1;
    ++bucket;
  }
  return bucket;
}

Cycles LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank =
      static_cast<uint64_t>(std::ceil(p * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank && buckets_[i] != 0) {
      // Upper bound of bucket i, clamped to what was actually observed.
      const Cycles upper = i == 0 ? 0 : (Cycles{1} << i) - 1;
      return std::clamp(upper, min_, max_);
    }
  }
  return max_;
}

Tracer::Tracer(const TraceConfig& config) : config_(config) {
  if (config_.enabled && config_.capacity > 0) {
    ring_.reserve(config_.capacity);
  }
}

void Tracer::Record(const TraceEvent& event) {
  if (!config_.enabled || config_.capacity == 0) return;
  if (ring_.size() < config_.capacity) {
    ring_.push_back(event);
  } else {
    ring_[recorded_ % config_.capacity] = event;  // overwrite the oldest
  }
  ++recorded_;
  histograms_[static_cast<size_t>(event.type)].Record(event.duration());
}

void Tracer::EmitInstant(TraceEventType type, uint32_t pid, uint64_t a,
                         uint64_t b) {
  if (!config_.enabled) return;
  TraceEvent event;
  event.type = type;
  event.pid = pid;
  event.start = event.end = Now();
  event.a = a;
  event.b = b;
  Record(event);
}

void Tracer::Emit(Tracer* tracer, TraceEventType type, uint32_t pid,
                  uint64_t a, uint64_t b) {
  if (tracer != nullptr) tracer->EmitInstant(type, pid, a, b);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (recorded_ <= ring_.size()) {
    out = ring_;
  } else {
    const uint64_t head = recorded_ % config_.capacity;
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(head));
  }
  return out;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  const double scale = config_.cycles_per_us > 0 ? config_.cycles_per_us : 1.0;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : Events()) {
    const TypeInfo& info = kTypeInfo[static_cast<size_t>(event.type)];
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    if (event.type == TraceEventType::kAppPhase) {
      os << "launch." << AppPhaseName(static_cast<AppPhase>(event.a));
    } else {
      os << info.name;
    }
    os << "\",\"cat\":\"kernel\",\"pid\":1,\"tid\":" << event.pid;
    os << std::fixed << std::setprecision(3);
    if (event.duration() > 0) {
      os << ",\"ph\":\"X\",\"ts\":"
         << static_cast<double>(event.start) / scale
         << ",\"dur\":" << static_cast<double>(event.duration()) / scale;
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
         << static_cast<double>(event.start) / scale;
    }
    os.unsetf(std::ios::floatfield);
    os << ",\"args\":{\"start_cycles\":" << event.start
       << ",\"dur_cycles\":" << event.duration();
    if (info.a_label[0] != '\0') {
      os << ",\"" << info.a_label << "\":" << event.a;
    }
    if (info.b_label[0] != '\0') {
      os << ",\"" << info.b_label << "\":" << event.b;
    }
    os << "}}";
  }
  os << "\n]}\n";
}

bool Tracer::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  WriteChromeTrace(os);
  return static_cast<bool>(os);
}

void Tracer::WriteText(std::ostream& os, size_t tail_events) const {
  os << "trace: " << recorded_ << " events recorded, " << dropped()
     << " dropped (capacity " << config_.capacity << ")\n";
  os << std::left << std::setw(16) << "type" << std::right << std::setw(10)
     << "count" << std::setw(12) << "p50" << std::setw(12) << "p95"
     << std::setw(12) << "p99" << std::setw(12) << "max"
     << "  (cycles)\n";
  for (uint32_t i = 0; i < kTraceEventTypeCount; ++i) {
    const LatencyHistogram& h = histograms_[i];
    if (h.count() == 0) continue;
    os << std::left << std::setw(16) << kTypeInfo[i].name << std::right
       << std::setw(10) << h.count() << std::setw(12) << h.Percentile(0.50)
       << std::setw(12) << h.Percentile(0.95) << std::setw(12)
       << h.Percentile(0.99) << std::setw(12) << h.max() << "\n";
  }
  const std::vector<TraceEvent> events = Events();
  const size_t tail = std::min(tail_events, events.size());
  if (tail == 0) return;
  os << "most recent " << tail << " events:\n";
  for (size_t i = events.size() - tail; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    os << "  [" << std::setw(12) << event.start << "] "
       << TraceEventTypeName(event.type) << " pid=" << event.pid
       << " a=" << event.a << " b=" << event.b << " dur=" << event.duration()
       << "\n";
  }
}

std::string Tracer::SummaryText() const {
  std::ostringstream os;
  WriteText(os, 0);
  return os.str();
}

void Tracer::Reset() {
  ring_.clear();
  recorded_ = 0;
  histograms_ = {};
}

TraceSpan::TraceSpan(Tracer* tracer, TraceEventType type, uint32_t pid) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  event_.type = type;
  event_.pid = pid;
  event_.start = tracer->Now();
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) return;
  const Cycles now = tracer_->Now();
  const Cycles elapsed = now > event_.start ? now - event_.start : 0;
  event_.end = event_.start + std::max(elapsed, explicit_duration_);
  tracer_->Record(event_);
}

}  // namespace sat
