// Set-associative cache models with cycle accounting.
//
// Geometry defaults follow the paper's Nexus 7 (Tegra 3, Cortex-A9):
// private 32 KB / 32 KB L1 I/D caches per core, 32-byte lines, and a 1 MB
// L2 shared by all cores. Caches are indexed and tagged by *physical*
// address (the L1I on the A9 is virtually indexed, but with 4-way 32 KB the
// index bits sit inside the page offset, so physical indexing is
// behaviour-identical).
//
// Page-table walks matter here: on ARMv7 the hardware walker's PTE fetches
// allocate into the data cache and L2, so every process with a *private*
// page table drags its own copy of identical PTE lines through the shared
// L2 — the cache-pollution effect the paper's shared PTPs eliminate
// (a shared PTP means one physical PTE line for all sharers).

#ifndef SRC_CACHE_CACHE_H_
#define SRC_CACHE_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/types.h"
#include "src/stats/cost_model.h"
#include "src/stats/counters.h"

namespace sat {

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;

  double MissRate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

// One set-associative cache with LRU replacement.
class Cache {
 public:
  Cache(std::string name, uint32_t size_bytes, uint32_t line_size, uint32_t ways);

  // Touches the line containing `pa`; returns true on hit. A miss fills
  // the line (victim selection is LRU).
  bool Access(PhysAddr pa);

  // Is the line currently resident (no state change)?
  bool Probe(PhysAddr pa) const;

  void InvalidateAll();

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

  const std::string& name() const { return name_; }
  uint32_t line_size() const { return line_size_; }

 private:
  struct Line {
    bool valid = false;
    uint64_t tag = 0;
    uint64_t lru_stamp = 0;
  };

  uint64_t LineAddr(PhysAddr pa) const { return pa / line_size_; }
  uint32_t SetOf(uint64_t line_addr) const {
    return static_cast<uint32_t>(line_addr & (num_sets_ - 1));
  }
  uint64_t TagOf(uint64_t line_addr) const { return line_addr >> set_shift_; }

  std::string name_;
  uint32_t line_size_;
  uint32_t ways_;
  uint32_t num_sets_;
  uint32_t set_shift_;
  uint64_t clock_ = 0;
  std::vector<Line> lines_;  // num_sets_ x ways_
  CacheStats stats_;
};

// A core's view of the memory hierarchy: private L1 I/D plus a pointer to
// the (possibly shared) L2. Returns access latencies from the cost model
// and attributes stall cycles + miss counts to the supplied CoreCounters.
class CacheHierarchy {
 public:
  // `l2` may be shared between several hierarchies (multi-core); the
  // caller owns it.
  CacheHierarchy(const CostModel* costs, Cache* l2);

  // Instruction-line fetch.
  Cycles AccessInst(PhysAddr pa, CoreCounters* counters);
  // Data access.
  Cycles AccessData(PhysAddr pa, CoreCounters* counters);
  // Hardware page-table-walk PTE fetch: allocates into L1D + L2 (ARMv7
  // walker behaviour); stall time is charged to the requesting side via
  // the caller.
  Cycles AccessPtw(PhysAddr pa, CoreCounters* counters);

  Cache& l1i() { return l1i_; }
  Cache& l1d() { return l1d_; }
  Cache& l2() { return *l2_; }

  void InvalidateAll();

  // Default Tegra-3-like geometry helpers.
  static Cache MakeL2() { return Cache("L2", 1024 * 1024, 32, 16); }

 private:
  const CostModel* costs_;
  Cache l1i_;
  Cache l1d_;
  Cache* l2_;
};

}  // namespace sat

#endif  // SRC_CACHE_CACHE_H_
