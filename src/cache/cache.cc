#include "src/cache/cache.h"

#include <bit>
#include <cassert>

namespace sat {

Cache::Cache(std::string name, uint32_t size_bytes, uint32_t line_size,
             uint32_t ways)
    : name_(std::move(name)), line_size_(line_size), ways_(ways) {
  assert(line_size > 0 && (line_size & (line_size - 1)) == 0);
  assert(size_bytes % (line_size * ways) == 0);
  num_sets_ = size_bytes / (line_size * ways);
  assert((num_sets_ & (num_sets_ - 1)) == 0 && "set count must be a power of two");
  set_shift_ = static_cast<uint32_t>(std::countr_zero(num_sets_));
  lines_.resize(static_cast<size_t>(num_sets_) * ways_);
}

bool Cache::Access(PhysAddr pa) {
  stats_.accesses++;
  clock_++;
  const uint64_t line_addr = LineAddr(pa);
  const uint32_t set = SetOf(line_addr);
  const uint64_t tag = TagOf(line_addr);
  for (uint32_t w = 0; w < ways_; ++w) {
    Line& line = lines_[static_cast<size_t>(set) * ways_ + w];
    if (line.valid && line.tag == tag) {
      line.lru_stamp = clock_;
      return true;
    }
  }
  stats_.misses++;
  Line* victim = nullptr;
  for (uint32_t w = 0; w < ways_; ++w) {
    Line& line = lines_[static_cast<size_t>(set) * ways_ + w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (victim == nullptr || line.lru_stamp < victim->lru_stamp) {
      victim = &line;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru_stamp = clock_;
  return false;
}

bool Cache::Probe(PhysAddr pa) const {
  const uint64_t line_addr = LineAddr(pa);
  const uint32_t set = SetOf(line_addr);
  const uint64_t tag = TagOf(line_addr);
  for (uint32_t w = 0; w < ways_; ++w) {
    const Line& line = lines_[static_cast<size_t>(set) * ways_ + w];
    if (line.valid && line.tag == tag) {
      return true;
    }
  }
  return false;
}

void Cache::InvalidateAll() {
  for (Line& line : lines_) {
    line.valid = false;
  }
}

CacheHierarchy::CacheHierarchy(const CostModel* costs, Cache* l2)
    : costs_(costs),
      l1i_("L1I", 32 * 1024, 32, 4),
      l1d_("L1D", 32 * 1024, 32, 4),
      l2_(l2) {
  assert(l2 != nullptr);
}

Cycles CacheHierarchy::AccessInst(PhysAddr pa, CoreCounters* counters) {
  if (l1i_.Access(pa)) {
    return costs_->l1_hit;
  }
  counters->l1i_misses++;
  Cycles stall;
  if (l2_->Access(pa)) {
    stall = costs_->l2_hit;
  } else {
    counters->l2_misses++;
    stall = costs_->l2_hit + costs_->dram;
  }
  counters->icache_stall_cycles += stall;
  return costs_->l1_hit + stall;
}

Cycles CacheHierarchy::AccessData(PhysAddr pa, CoreCounters* counters) {
  if (l1d_.Access(pa)) {
    return costs_->l1_hit;
  }
  counters->l1d_misses++;
  Cycles stall;
  if (l2_->Access(pa)) {
    stall = costs_->l2_hit;
  } else {
    counters->l2_misses++;
    stall = costs_->l2_hit + costs_->dram;
  }
  counters->dcache_stall_cycles += stall;
  return costs_->l1_hit + stall;
}

Cycles CacheHierarchy::AccessPtw(PhysAddr pa, CoreCounters* counters) {
  // The ARMv7 hardware walker allocates PTE fetches into L1D and L2; the
  // stall accounting is left to the caller (it shows up as TLB-miss stall
  // time, not as a data-cache stall).
  if (l1d_.Access(pa)) {
    return costs_->l1_hit;
  }
  counters->l1d_misses++;
  if (l2_->Access(pa)) {
    return costs_->l1_hit + costs_->l2_hit;
  }
  counters->l2_misses++;
  return costs_->l1_hit + costs_->l2_hit + costs_->dram;
}

void CacheHierarchy::InvalidateAll() {
  l1i_.InvalidateAll();
  l1d_.InvalidateAll();
  l2_->InvalidateAll();
}

}  // namespace sat
