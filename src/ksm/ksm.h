// KSM-style same-page merging: content dedup on top of zygote sharing.
//
// The paper shares pages that are identical *by construction* (COW fork,
// preloaded libraries); real Android additionally runs KSM to reclaim anon
// pages that *become* identical after zygote COW diverges. This daemon is
// the simulator's analogue of mm/ksm.c, built on the per-frame content tag
// (PageFrame::content — the simulator models no page bytes, so a 64-bit
// tag stands in for a page's content and "checksumming" is reading it).
//
// Structure, mirroring Linux:
//
//   * A scan pass (`ScanOnce`) walks every madvise(MERGEABLE) anonymous
//     region of every live address space, in task-table order and
//     ascending VA — a fixed order, so the whole subsystem is
//     deterministic under the parallel experiment driver.
//   * The *stable tree* maps content -> the one canonical frame holding
//     it. Every stable frame is write-protected in all its mappings; a
//     write fault COWs away (unmerge) through the ordinary COW path,
//     which never reuses a stable frame in place (the PageKsm rule).
//   * The *unstable tree* is rebuilt each pass: the first page seen with
//     some content is remembered; the second becomes the trigger that
//     promotes the remembered page to stable and merges into it.
//   * The checksum-skip heuristic: a page enters the unstable tree only
//     when its content is unchanged since the previous scan, so pages
//     being actively written never churn the trees.
//
// Merging one PTE means: lazily unshare its PTP if the paper's sharing
// left it NEED_COPY (a shared PTP's entries are communal — KSM, like
// Linux, merges per-address-space PTEs), write-protect + repoint the PTE
// at the stable frame, shoot down the stale translation, and drop the
// duplicate frame's reference. An ENOMEM during the unshare abandons just
// that candidate; nothing is half-merged.
//
// The daemon observes frame lifecycle so a stable frame freed by any path
// (unmerge of the last sharer, swap-out, exit) prunes its tree node.
// Stable frames swap like any other anon frame — one compressed slot
// serves all N sharers' swap PTEs, and the content tag rides through the
// zram slot so a swapped-in page can be re-merged by a later pass.

#ifndef SRC_KSM_KSM_H_
#define SRC_KSM_KSM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/arch/types.h"
#include "src/mem/phys_memory.h"
#include "src/stats/counters.h"
#include "src/vm/vm_manager.h"

namespace sat {

class MmStruct;
class PtpAllocator;
class ReverseMap;
class Tracer;

// One address space the scan visits. `flush_tlb` is the owner's
// whole-ASID flush (handed to the lazy unshare); per-VA shootdowns go
// through the daemon-wide flush_va callback.
struct KsmScanTarget {
  MmStruct* mm = nullptr;
  uint32_t pid = 0;
  TlbFlushFn flush_tlb;
};

class KsmDaemon : public FrameLifecycleObserver {
 public:
  KsmDaemon(PhysicalMemory* phys, PtpAllocator* ptps, ReverseMap* rmap,
            VmManager* vm, KernelCounters* counters);

  KsmDaemon(const KsmDaemon&) = delete;
  KsmDaemon& operator=(const KsmDaemon&) = delete;

  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Per-VA TLB shootdown used when a PTE is downgraded or repointed; the
  // PTP whose entry changed rides along so the kernel can derive the
  // shootdown cpumask from its sharer set. May be left unset in
  // page-table-only tests.
  void set_flush_va(std::function<void(VirtAddr, PtpId)> flush_va) {
    flush_va_ = std::move(flush_va);
  }

  // One full ksmd pass over the mergeable regions of `targets`, in order.
  // Returns the number of PTEs merged this pass.
  uint32_t ScanOnce(const std::vector<KsmScanTarget>& targets);

  // /sys/kernel/mm/ksm-style gauges. pages_shared counts stable frames;
  // pages_sharing counts the additional PTEs deduplicated into them.
  uint64_t pages_shared() const { return stable_.size(); }
  uint64_t pages_sharing() const;

  bool IsStableFrame(FrameNumber frame) const {
    return stable_by_frame_.find(frame) != stable_by_frame_.end();
  }

  // fn(content, frame) over the stable tree in content order (auditor).
  template <typename Fn>
  void ForEachStable(Fn&& fn) const {
    for (const auto& [content, frame] : stable_) {
      fn(content, frame);
    }
  }

  // FrameLifecycleObserver: a freed frame leaves the stable tree (covers
  // unmerge-of-last-sharer, swap-out, and process exit uniformly).
  void OnFrameAllocated(FrameNumber frame, FrameKind kind) override;
  void OnFrameFreed(FrameNumber frame, FrameKind kind) override;

 private:
  // A page remembered by the unstable tree this pass.
  struct Candidate {
    MmStruct* mm = nullptr;
    uint32_t pid = 0;
    VirtAddr va = 0;
    FrameNumber frame = 0;
    const KsmScanTarget* target = nullptr;
  };

  void ScanTarget(const KsmScanTarget& target, uint32_t* scanned,
                  uint32_t* merged);
  void ScanPage(const KsmScanTarget& target, VirtAddr va, uint32_t* scanned,
                uint32_t* merged);

  // Still mapping the frame it was remembered with, content unchanged?
  bool CandidateStillValid(const Candidate& candidate,
                           uint64_t content) const;

  // Write-protects every PTE mapping `frame` (via the rmap; one entry in
  // a shared PTP covers all sharers), marks it stable, and inserts the
  // tree node. The write-protect is unconditional — even under the
  // hw-L1-write-protect ablation, where shared-PTP entries stay RW and
  // the L1 bit blocks writes, the per-PTE downgrade is harmless and keeps
  // the stable-frame invariant (no writable mapping) unconditional.
  void Promote(uint64_t content, FrameNumber frame);

  // Repoints `va`'s PTE at stable frame `stable`, unsharing the PTP
  // first when NEED_COPY. False (and nothing changed beyond a completed
  // unshare) when the unshare could not allocate or the PTE vanished.
  bool MergeInto(const KsmScanTarget& target, VirtAddr va,
                 FrameNumber stable);

  void FlushVa(VirtAddr va, PtpId ptp) {
    if (flush_va_) {
      flush_va_(va, ptp);
    }
  }

  PhysicalMemory* phys_;
  PtpAllocator* ptps_;
  ReverseMap* rmap_;
  VmManager* vm_;
  KernelCounters* counters_;
  Tracer* tracer_ = nullptr;
  std::function<void(VirtAddr, PtpId)> flush_va_;

  // Stable tree: content -> canonical frame. Ordered by content so every
  // iteration over it is deterministic.
  std::map<uint64_t, FrameNumber> stable_;
  std::unordered_map<FrameNumber, uint64_t> stable_by_frame_;

  // Unstable tree, rebuilt every pass.
  std::map<uint64_t, Candidate> unstable_;

  // Checksum-skip state: (pid << 32 | virtual page) -> content seen at
  // the previous pass. A page joins the unstable tree only when its
  // content has survived one full scan interval unchanged.
  std::unordered_map<uint64_t, uint64_t> last_checksum_;
};

}  // namespace sat

#endif  // SRC_KSM_KSM_H_
