#include "src/ksm/ksm.h"

#include <utility>

#include "src/arch/check.h"
#include "src/pt/page_table.h"
#include "src/pt/ptp.h"
#include "src/pt/rmap.h"
#include "src/trace/trace.h"
#include "src/vm/mm.h"

namespace sat {

KsmDaemon::KsmDaemon(PhysicalMemory* phys, PtpAllocator* ptps,
                     ReverseMap* rmap, VmManager* vm,
                     KernelCounters* counters)
    : phys_(phys), ptps_(ptps), rmap_(rmap), vm_(vm), counters_(counters) {
  SAT_CHECK(phys_ != nullptr && ptps_ != nullptr && rmap_ != nullptr &&
            vm_ != nullptr && counters_ != nullptr);
}

uint32_t KsmDaemon::ScanOnce(const std::vector<KsmScanTarget>& targets) {
  // The unstable tree never survives a pass: its pages were not
  // write-protected, so their content may have changed at any time.
  unstable_.clear();
  uint32_t scanned = 0;
  uint32_t merged = 0;
  for (const KsmScanTarget& target : targets) {
    ScanTarget(target, &scanned, &merged);
  }
  unstable_.clear();
  counters_->ksm_scans++;
  Tracer::Emit(tracer_, TraceEventType::kKsmScan, 0, scanned, merged);
  return merged;
}

void KsmDaemon::ScanTarget(const KsmScanTarget& target, uint32_t* scanned,
                           uint32_t* merged) {
  SAT_CHECK(target.mm != nullptr);
  // Snapshot the mergeable ranges before touching any PTE; merging never
  // mutates the region list, but scanning off a snapshot keeps that a
  // non-assumption.
  std::vector<std::pair<VirtAddr, VirtAddr>> ranges;
  target.mm->ForEachVma([&](const VmArea& vma) {
    if (vma.mergeable && vma.kind == VmKind::kAnonPrivate) {
      ranges.emplace_back(vma.start, vma.end);
    }
  });
  for (const auto& [start, end] : ranges) {
    for (uint64_t va = start; va < end; va += kPageSize) {
      ScanPage(target, static_cast<VirtAddr>(va), scanned, merged);
    }
  }
}

void KsmDaemon::ScanPage(const KsmScanTarget& target, VirtAddr va,
                         uint32_t* scanned, uint32_t* merged) {
  PageTable& pt = target.mm->page_table();
  const auto ref = pt.FindPte(va);
  if (!ref.has_value() || !ref->ptp->hw(ref->index).valid()) {
    return;  // unpopulated or swapped out: nothing resident to merge
  }
  const HwPte hw = ref->ptp->hw(ref->index);
  if (hw.large()) {
    return;  // 64 KB blocks are never merge candidates
  }
  const FrameNumber frame = MappedFrameOf(hw, ref->index);
  if (frame == phys_->zero_frame()) {
    return;  // untouched zero-fill pages are already maximally shared
  }
  const PageFrame& meta = phys_->frame(frame);
  if (meta.kind != FrameKind::kAnon || meta.ksm_stable) {
    return;  // only plain anonymous pages; stable pages are done
  }
  (*scanned)++;
  counters_->ksm_pages_scanned++;
  const uint64_t content = meta.content;

  // Stable-tree hit: a canonical frame with this content already exists.
  const auto stable_it = stable_.find(content);
  if (stable_it != stable_.end()) {
    if (MergeInto(target, va, stable_it->second)) {
      (*merged)++;
    }
    return;
  }

  // Checksum-skip: only pages whose content survived a full scan interval
  // unchanged may enter the unstable tree (Linux's oldchecksum test).
  const uint64_t key =
      (static_cast<uint64_t>(target.pid) << 32) | VirtPageNumber(va);
  const auto seen = last_checksum_.find(key);
  if (seen == last_checksum_.end() || seen->second != content) {
    last_checksum_[key] = content;
    return;
  }

  const auto unstable_it = unstable_.find(content);
  if (unstable_it == unstable_.end()) {
    unstable_.emplace(
        content, Candidate{target.mm, target.pid, va, frame, &target});
    return;
  }
  Candidate& partner = unstable_it->second;
  if (!CandidateStillValid(partner, content)) {
    // The remembered page changed or vanished since it was inserted (the
    // unstable tree's defining hazard); the current page takes its place.
    partner = Candidate{target.mm, target.pid, va, frame, &target};
    return;
  }
  if (partner.frame == frame) {
    // Two PTEs already share this frame through COW. There is nothing to
    // merge, but promoting the frame lets later duplicates merge into it
    // and write-protects any writable mapping it still has.
    Promote(content, frame);
    unstable_.erase(unstable_it);
    return;
  }
  // Second page with this content: the remembered partner becomes the
  // stable frame, the current page merges into it.
  const FrameNumber stable_frame = partner.frame;
  Promote(content, stable_frame);
  unstable_.erase(unstable_it);
  if (MergeInto(target, va, stable_frame)) {
    (*merged)++;
  }
}

bool KsmDaemon::CandidateStillValid(const Candidate& candidate,
                                    uint64_t content) const {
  const auto ref = candidate.mm->page_table().FindPte(candidate.va);
  if (!ref.has_value() || !ref->ptp->hw(ref->index).valid()) {
    return false;
  }
  const HwPte hw = ref->ptp->hw(ref->index);
  if (hw.large() || MappedFrameOf(hw, ref->index) != candidate.frame) {
    return false;
  }
  const PageFrame& meta = phys_->frame(candidate.frame);
  return meta.kind == FrameKind::kAnon && !meta.ksm_stable &&
         meta.content == content;
}

void KsmDaemon::Promote(uint64_t content, FrameNumber frame) {
  PageFrame& meta = phys_->frame(frame);
  SAT_CHECK(meta.kind == FrameKind::kAnon && !meta.ksm_stable);
  // Write-protect every mapping via the rmap. One entry in a shared PTP
  // covers all its sharers — one downgrade, one shootdown.
  for (const RmapEntry& mapping : rmap_->MappingsOf(frame)) {
    PageTablePage& ptp = ptps_->Get(mapping.ptp);
    HwPte hw = ptp.hw(mapping.index);
    LinuxPte sw = ptp.sw(mapping.index);
    const bool was_writable = hw.perm() == PtePerm::kReadWrite;
    if (!was_writable && !sw.dirty()) {
      continue;
    }
    hw.WriteProtect();
    sw.set_dirty(false);
    ptp.UpdateFlags(mapping.index, hw, sw);
    if (was_writable) {
      counters_->ksm_ptes_write_protected++;
      FlushVa(mapping.va, mapping.ptp);
    }
  }
  meta.ksm_stable = true;
  stable_.emplace(content, frame);
  stable_by_frame_.emplace(frame, content);
}

bool KsmDaemon::MergeInto(const KsmScanTarget& target, VirtAddr va,
                          FrameNumber stable) {
  MmStruct& mm = *target.mm;
  PageTable& pt = mm.page_table();
  if (pt.SlotNeedsCopy(va)) {
    // A shared PTP's entries are communal; KSM merges one address space's
    // PTE, so the PTP must be privatized first (the lazy unshare).
    Cycles cycles = 0;
    const std::optional<uint32_t> copied =
        vm_->UnshareIfNeeded(mm, va, target.flush_tlb, &cycles);
    if (!copied.has_value()) {
      // ENOMEM: TryUnshareSlot left the slot untouched, so abandoning the
      // candidate rolls the merge back completely.
      counters_->ksm_merge_failures++;
      return false;
    }
    counters_->ksm_unshares++;
  }
  const auto ref = pt.FindPte(va);
  if (!ref.has_value() || !ref->ptp->hw(ref->index).valid()) {
    // The copy-referenced-only unshare ablation drops unreferenced
    // entries; the candidate PTE is gone.
    counters_->ksm_merge_failures++;
    return false;
  }
  const HwPte old_hw = ref->ptp->hw(ref->index);
  if (MappedFrameOf(old_hw, ref->index) == stable) {
    return false;  // nothing to do (cannot happen from ScanPage)
  }
  const LinuxPte old_sw = ref->ptp->sw(ref->index);
  LinuxPte sw;
  sw.set_present(true);
  sw.set_young(old_sw.young());
  sw.set_writable(old_sw.writable());
  // SetPte references the stable frame, releases the duplicate (freeing
  // it if this was its last mapping), and fixes the rmap.
  pt.SetPte(va,
            HwPte::MakePage(stable, PtePerm::kReadOnly, /*global=*/false,
                            old_hw.executable()),
            sw);
  FlushVa(va, ref->ptp->id());
  counters_->ksm_pages_merged++;
  Tracer::Emit(tracer_, TraceEventType::kKsmMerge, target.pid,
               VirtPageNumber(va), stable);
  return true;
}

uint64_t KsmDaemon::pages_sharing() const {
  uint64_t total = 0;
  for (const auto& [content, frame] : stable_) {
    (void)content;
    const uint32_t maps = rmap_->MapCount(frame);
    total += maps > 0 ? maps - 1 : 0;
  }
  return total;
}

void KsmDaemon::OnFrameAllocated(FrameNumber frame, FrameKind kind) {
  (void)frame;
  (void)kind;
}

void KsmDaemon::OnFrameFreed(FrameNumber frame, FrameKind kind) {
  (void)kind;
  const auto it = stable_by_frame_.find(frame);
  if (it == stable_by_frame_.end()) {
    return;
  }
  stable_.erase(it->second);
  stable_by_frame_.erase(it);
}

}  // namespace sat
