// Deterministic allocation-failure and corruption injection.
//
// A FaultInjector sits behind PhysicalMemory's Try* allocation entry
// points and decides, per call site, whether the next allocation should
// artificially fail. Three knobs per site, combinable:
//
//   - fail_nth:     fail exactly the Nth attempt at this site (1-based),
//   - every_kth:    fail every k-th attempt (k, 2k, 3k, ...),
//   - probability:  fail each attempt independently with probability p,
//                   drawn from a seeded PRNG so runs are reproducible.
//
// All knobs default to off. The injector only ever affects the fallible
// Try* paths; the infallible wrappers (AllocFrame etc.) go through the
// same Try* code, so injection under them turns into a SAT_CHECK abort —
// tests that want to exercise recovery must call the fallible API (the
// kernel does).
//
// Chaos mode adds seeded bit-flip corruption with the same rule shape at
// a second family of sites (hardware PTE words, zram slot bytes, TLB
// entry tags). The kernel polls ShouldCorrupt at its touch entry point
// and, when it fires, damages live state — then the checksum / scrubd /
// oops machinery has to detect and contain it. Rand64() supplies the
// seeded randomness for choosing *what* to flip, so a (seed, rules) pair
// reproduces the exact same damage sequence.

#ifndef SRC_MEM_FAULT_INJECTOR_H_
#define SRC_MEM_FAULT_INJECTOR_H_

#include <cstdint>
#include <random>

namespace sat {

// One entry per distinct allocation site that can be failed independently.
enum class AllocSite : uint32_t {
  kFrame = 0,       // single-frame allocations (anon, file cache, kernel)
  kContiguous = 1,  // naturally-aligned contiguous runs (large pages)
  kPtp = 2,         // page-table-page frame allocations
  kZram = 3,        // compressed-store pool growth (swap-out path)
  kCount = 4,
};

const char* AllocSiteName(AllocSite site);

// One entry per distinct kind of state a chaos bit-flip can damage.
enum class CorruptSite : uint32_t {
  kPteWord = 0,      // a hardware PTE word in a live PTP
  kZramByte = 1,     // a byte of a stored compressed slot
  kTlbTag = 2,       // a main-TLB entry's tag/attributes
  kNumaReplica = 3,  // a word of a per-node page-table replica
  kCount = 4,
};

const char* CorruptSiteName(CorruptSite site);

struct FaultRule {
  uint64_t fail_nth = 0;    // 0 = off; 1-based attempt index to fail once
  uint64_t every_kth = 0;   // 0 = off; fail attempts k, 2k, 3k, ...
  double probability = 0.0; // 0.0 = off; independent per-attempt failure
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  void SetRule(AllocSite site, const FaultRule& rule) {
    rules_[Index(site)] = rule;
  }
  const FaultRule& rule(AllocSite site) const { return rules_[Index(site)]; }

  void SetCorruptRule(CorruptSite site, const FaultRule& rule) {
    corrupt_rules_[Index(site)] = rule;
  }
  const FaultRule& corrupt_rule(CorruptSite site) const {
    return corrupt_rules_[Index(site)];
  }

  // Clears all rules and counters; the PRNG keeps advancing (reseed by
  // constructing a fresh injector if bit-exact replay is needed).
  void Reset();

  // Called once per allocation attempt at `site`. Returns true if this
  // attempt should fail. Always counts the attempt, even with no rules set.
  bool ShouldFail(AllocSite site);

  // Called once per corruption opportunity at `site` (e.g. every page
  // touch for kPteWord). Returns true if this opportunity should flip
  // bits. Same knobs and determinism contract as ShouldFail.
  bool ShouldCorrupt(CorruptSite site);

  // Seeded randomness for picking what to damage once ShouldCorrupt said
  // yes (bit index, byte value, TLB way ...). Advances the shared PRNG.
  uint64_t Rand64() { return rng_(); }

  uint64_t attempts(AllocSite site) const { return attempts_[Index(site)]; }
  uint64_t injected(AllocSite site) const { return injected_[Index(site)]; }
  uint64_t total_injected() const;

  uint64_t corrupt_attempts(CorruptSite site) const {
    return corrupt_attempts_[Index(site)];
  }
  uint64_t corrupt_injected(CorruptSite site) const {
    return corrupt_injected_[Index(site)];
  }
  uint64_t total_corruptions() const;

 private:
  static constexpr uint32_t kNumSites =
      static_cast<uint32_t>(AllocSite::kCount);
  static constexpr uint32_t kNumCorruptSites =
      static_cast<uint32_t>(CorruptSite::kCount);
  static uint32_t Index(AllocSite site) {
    return static_cast<uint32_t>(site);
  }
  static uint32_t Index(CorruptSite site) {
    return static_cast<uint32_t>(site);
  }

  FaultRule rules_[kNumSites];
  uint64_t attempts_[kNumSites] = {};
  uint64_t injected_[kNumSites] = {};
  FaultRule corrupt_rules_[kNumCorruptSites];
  uint64_t corrupt_attempts_[kNumCorruptSites] = {};
  uint64_t corrupt_injected_[kNumCorruptSites] = {};
  std::mt19937_64 rng_;
};

}  // namespace sat

#endif  // SRC_MEM_FAULT_INJECTOR_H_
