// Deterministic allocation-failure injection.
//
// A FaultInjector sits behind PhysicalMemory's Try* allocation entry
// points and decides, per call site, whether the next allocation should
// artificially fail. Three knobs per site, combinable:
//
//   - fail_nth:     fail exactly the Nth attempt at this site (1-based),
//   - every_kth:    fail every k-th attempt (k, 2k, 3k, ...),
//   - probability:  fail each attempt independently with probability p,
//                   drawn from a seeded PRNG so runs are reproducible.
//
// All knobs default to off. The injector only ever affects the fallible
// Try* paths; the infallible wrappers (AllocFrame etc.) go through the
// same Try* code, so injection under them turns into a SAT_CHECK abort —
// tests that want to exercise recovery must call the fallible API (the
// kernel does).

#ifndef SRC_MEM_FAULT_INJECTOR_H_
#define SRC_MEM_FAULT_INJECTOR_H_

#include <cstdint>
#include <random>

namespace sat {

// One entry per distinct allocation site that can be failed independently.
enum class AllocSite : uint32_t {
  kFrame = 0,       // single-frame allocations (anon, file cache, kernel)
  kContiguous = 1,  // naturally-aligned contiguous runs (large pages)
  kPtp = 2,         // page-table-page frame allocations
  kZram = 3,        // compressed-store pool growth (swap-out path)
  kCount = 4,
};

const char* AllocSiteName(AllocSite site);

struct FaultRule {
  uint64_t fail_nth = 0;    // 0 = off; 1-based attempt index to fail once
  uint64_t every_kth = 0;   // 0 = off; fail attempts k, 2k, 3k, ...
  double probability = 0.0; // 0.0 = off; independent per-attempt failure
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  void SetRule(AllocSite site, const FaultRule& rule) {
    rules_[Index(site)] = rule;
  }
  const FaultRule& rule(AllocSite site) const { return rules_[Index(site)]; }

  // Clears all rules and counters; the PRNG keeps advancing (reseed by
  // constructing a fresh injector if bit-exact replay is needed).
  void Reset();

  // Called once per allocation attempt at `site`. Returns true if this
  // attempt should fail. Always counts the attempt, even with no rules set.
  bool ShouldFail(AllocSite site);

  uint64_t attempts(AllocSite site) const { return attempts_[Index(site)]; }
  uint64_t injected(AllocSite site) const { return injected_[Index(site)]; }
  uint64_t total_injected() const;

 private:
  static constexpr uint32_t kNumSites =
      static_cast<uint32_t>(AllocSite::kCount);
  static uint32_t Index(AllocSite site) {
    return static_cast<uint32_t>(site);
  }

  FaultRule rules_[kNumSites];
  uint64_t attempts_[kNumSites] = {};
  uint64_t injected_[kNumSites] = {};
  std::mt19937_64 rng_;
};

}  // namespace sat

#endif  // SRC_MEM_FAULT_INJECTOR_H_
