// Compressed in-RAM swap backing store, modelled on Android's zram block
// device with a zsmalloc-style pool.
//
// The store hands out *swap slots*: refcounted handles to one compressed
// page each. A slot's reference count equals
//
//     #swap PTEs naming the slot  +  (1 if a swap-cache entry exists)
//
// where a swap PTE in a *shared* PTP counts once — exactly one PTE serves
// every sharer, mirroring how data-frame references work in this kernel
// (see src/pt/page_table.h). The slot is freed when the count reaches
// zero; additionally, when the count drops to 1 and that last reference
// is the swap cache itself, the store drops the cache entry and frees the
// slot eagerly (the analogue of Linux's try_to_free_swap: no swap PTE can
// ever fault the copy back in, so keeping it compressed is pure waste).
//
// The swap cache maps slot -> physical frame for pages that are currently
// decompressed. It is what makes a slot shared by many address spaces
// decompress once: the first swap-in allocates and "decompresses", later
// swap-ins find the frame. The cache holds one frame reference and one
// slot reference per entry.
//
// No page contents are simulated, so "compression" samples a per-page
// compressed size from a seeded PRNG (a few percent incompressible, the
// rest uniform in [512, 3072] bytes — roughly lz4 on Android heaps). The
// pool backing the compressed bytes is real simulated RAM: kZram frames
// allocated fallibly from PhysicalMemory, grown and shrunk to
// ceil(stored_bytes / page size). Swapping consumes memory to free
// memory, exactly the zram trade-off.

#ifndef SRC_MEM_ZRAM_H_
#define SRC_MEM_ZRAM_H_

#include <cstdint>
#include <optional>
#include <random>
#include <unordered_map>
#include <vector>

#include "src/arch/pte.h"
#include "src/arch/types.h"
#include "src/mem/phys_memory.h"

namespace sat {

// Why a TryStore attempt failed: the logical device being at disksize is
// permanent pressure (writing more pages is pointless), while pool ENOMEM
// is transient physical exhaustion worth distinguishing in summaries.
enum class ZramStoreFailure : uint8_t {
  kNone = 0,
  kDisabled,    // store configured off (disksize 0)
  kStoreFull,   // logical device at disksize capacity
  kPoolEnomem,  // backing-pool frame allocation failed / fault injected
};

class ZramStore {
 public:
  static constexpr FrameNumber kNoFrame = static_cast<FrameNumber>(-1);

  // Content checksum stored per slot at compression time and verified on
  // decompress; a mismatch means the compressed copy rotted in the pool.
  // splitmix64's finalizer: cheap, and any single bit flip in the content
  // tag changes the checksum.
  static uint64_t ChecksumOf(uint64_t content) {
    uint64_t z = content + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // `disksize_bytes` is the logical device size (uncompressed capacity),
  // like /sys/block/zram0/disksize. Zero disables the store entirely.
  ZramStore(PhysicalMemory* phys, uint64_t disksize_bytes, uint64_t seed);
  ~ZramStore();

  ZramStore(const ZramStore&) = delete;
  ZramStore& operator=(const ZramStore&) = delete;

  bool enabled() const { return disksize_bytes_ > 0; }
  uint64_t disksize_bytes() const { return disksize_bytes_; }

  // Compresses one page into a fresh slot and returns it holding one
  // reference (the caller's, typically handed over to the first swap
  // PTE). `content` is the page's content tag (PageFrame::content); it is
  // preserved across the compress/decompress round trip so KSM can still
  // recognise the page after swap-in. Fails when the logical device is
  // full or the pool cannot grow (physical exhaustion or injected fault)
  // — nothing is mutated then. `why`, when non-null, receives the failure
  // cause (kNone on success).
  std::optional<SwapSlotId> TryStore(uint64_t content,
                                     ZramStoreFailure* why = nullptr);

  void Ref(SwapSlotId slot);
  // Drops one reference; frees the slot at zero. If the drop leaves the
  // swap cache as the only holder, the cache entry (and its frame) is
  // released too and the slot freed — see the header comment.
  void Unref(SwapSlotId slot);

  // Swap cache: at most one frame per slot and one slot per frame. Adding
  // takes a reference on both; removing drops both.
  void AddToCache(SwapSlotId slot, FrameNumber frame);
  void RemoveFromCache(SwapSlotId slot);
  FrameNumber CacheLookup(SwapSlotId slot) const;  // kNoFrame when absent
  std::optional<SwapSlotId> CacheSlotOf(FrameNumber frame) const;

  bool SlotLive(SwapSlotId slot) const;
  uint32_t SlotRefCount(SwapSlotId slot) const;
  uint32_t SlotBytes(SwapSlotId slot) const;
  uint64_t SlotContent(SwapSlotId slot) const;

  // True when the slot's stored content still matches the checksum taken
  // at store time. Swap-in verifies this before trusting the decompressed
  // bytes.
  bool SlotChecksumOk(SwapSlotId slot) const;

  // Chaos backdoor: flips bits of the stored compressed copy without
  // updating the checksum, exactly what pool rot would do.
  void CorruptSlotForChaos(SwapSlotId slot, uint64_t xor_mask);

  // Repair path: overwrite the slot with a freshly compressed copy of
  // `content` (re-duplication from a still-intact decompressed frame) and
  // restamp the checksum. Slot identity, size accounting and references
  // are unchanged, so sharers' swap PTEs stay valid.
  void RepairSlotContent(SwapSlotId slot, uint64_t content);

  // Deterministically picks a live slot (scan from rand % capacity), or
  // nullopt when no slot is live. For chaos injection target selection.
  std::optional<SwapSlotId> AnyLiveSlot(uint64_t rand) const;

  // Live usage.
  uint64_t live_slots() const { return live_slot_count_; }
  uint64_t stored_bytes() const { return stored_bytes_; }
  uint64_t pool_frame_count() const { return pool_.size(); }
  uint64_t cached_entries() const { return cache_by_slot_.size(); }

  // Lifetime totals (for compression-ratio reporting).
  uint64_t pages_stored_total() const { return pages_stored_total_; }
  uint64_t bytes_compressed_total() const { return bytes_compressed_total_; }

  // fn(slot, ref_count, compressed_bytes, cached_frame_or_kNoFrame) for
  // every live slot; iteration order is unspecified. For the auditor.
  template <typename Fn>
  void ForEachSlot(Fn&& fn) const {
    for (SwapSlotId id = 0; id < slots_.size(); ++id) {
      if (slots_[id].live) {
        fn(id, slots_[id].ref_count, slots_[id].bytes, slots_[id].cached);
      }
    }
  }

 private:
  struct Slot {
    uint32_t ref_count = 0;
    uint32_t bytes = 0;
    FrameNumber cached = kNoFrame;
    bool live = false;
    uint64_t content = 0;
    uint64_t checksum = 0;  // ChecksumOf(content) at store/repair time
  };

  uint32_t SampleCompressedSize();
  // Grows/shrinks the kZram pool to ceil(stored_bytes_ / kPageSize).
  bool TryGrowPoolFor(uint32_t extra_bytes);
  void ShrinkPool();
  void FreeSlot(SwapSlotId slot);

  PhysicalMemory* phys_;
  uint64_t disksize_bytes_;
  std::mt19937_64 rng_;

  std::vector<Slot> slots_;
  std::vector<SwapSlotId> free_slot_ids_;
  std::unordered_map<FrameNumber, SwapSlotId> cache_by_frame_;
  std::unordered_map<SwapSlotId, FrameNumber> cache_by_slot_;
  std::vector<FrameNumber> pool_;

  uint64_t live_slot_count_ = 0;
  uint64_t stored_bytes_ = 0;
  uint64_t pages_stored_total_ = 0;
  uint64_t bytes_compressed_total_ = 0;
};

}  // namespace sat

#endif  // SRC_MEM_ZRAM_H_
