// Physical memory for the simulated machine: a frame allocator plus
// per-frame metadata (the analogue of Linux's `struct page` array).
//
// The paper reuses the existing `mapcount` field of a page-table page's
// `struct page` to hold the PTP sharer count; `PageFrame::map_count` plays
// exactly that role here. Ordinary data frames use `ref_count` for the
// number of PTE / page-cache references, which drives COW decisions.

#ifndef SRC_MEM_PHYS_MEMORY_H_
#define SRC_MEM_PHYS_MEMORY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/arch/types.h"

namespace sat {
class FaultInjector;
}

namespace sat {

enum class FrameKind : uint8_t {
  kFree = 0,
  kAnon,        // anonymous memory (heap, stack, COW copies)
  kFileCache,   // page-cache copy of a file page
  kPageTable,   // holds a page-table page
  kKernel,      // kernel text/data (never freed)
  kZero,        // the shared zero page
  kZram,        // backing pool of the compressed swap store
  kQuarantined, // pulled from circulation after corruption; never re-issued
};

constexpr const char* FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kFree:
      return "free";
    case FrameKind::kAnon:
      return "anon";
    case FrameKind::kFileCache:
      return "file-cache";
    case FrameKind::kPageTable:
      return "page-table";
    case FrameKind::kKernel:
      return "kernel";
    case FrameKind::kZero:
      return "zero";
    case FrameKind::kZram:
      return "zram";
    case FrameKind::kQuarantined:
      return "quarantined";
  }
  return "?";
}

// Observes frame allocation and free events — the hook the anonymous /
// file-cache LRU lists (src/vm/swap.h) and the KSM daemon (src/ksm) use to
// track membership without PhysicalMemory knowing about reclaim or merge
// policy. The permanent zero frame is set up before any observer can
// attach and is never reported.
class FrameLifecycleObserver {
 public:
  virtual ~FrameLifecycleObserver() = default;
  virtual void OnFrameAllocated(FrameNumber frame, FrameKind kind) = 0;
  virtual void OnFrameFreed(FrameNumber frame, FrameKind kind) = 0;
};

struct PageFrame {
  FrameKind kind = FrameKind::kFree;
  // Number of references (PTE mappings + one for page-cache residency).
  uint32_t ref_count = 0;
  // For kPageTable frames: the number of address spaces sharing the PTP
  // (the paper's reuse of struct page::mapcount).
  uint32_t map_count = 0;
  // For kFileCache frames: which file page this caches.
  FileId file = kNoFile;
  uint32_t file_page_index = 0;
  // Content tag: the simulator models no page bytes, so a 64-bit value
  // stands in for the page's content. Two anon pages are byte-identical
  // iff their tags are equal — this is what KSM keys its trees on.
  uint64_t content = 0;
  // True for a KSM stable frame (the analogue of PageKsm): write faults
  // must always COW away from it, never reuse it in place.
  bool ksm_stable = false;
  // Set by QuarantineFrame on a frame that is still referenced: the frame
  // keeps serving its existing users, but when the last reference drops it
  // becomes kQuarantined instead of returning to the free list.
  bool quarantine_on_free = false;
};

// Allocation is fallible: the Try* entry points return std::nullopt when
// the free list (or a contiguous run) is exhausted, or when an attached
// FaultInjector decides this attempt should fail. The kernel reacts by
// reclaiming and, as a last resort, OOM-killing. The infallible wrappers
// (AllocFrame etc.) exist for callers that have sized memory generously —
// mostly tests — and SAT_CHECK-abort on failure. Misuse (bad kinds,
// double-free) is always a programming error and aborts.
class PhysicalMemory {
 public:
  // `size_bytes` must be a multiple of the page size. With more than one
  // NUMA node, frames are split into `num_nodes` equal contiguous blocks
  // (frames [0, per_node) are node 0, and so on) with a free list per
  // node; TryAllocFrame serves the preferred node first and falls back to
  // the others in ascending order. A single-node machine behaves exactly
  // as before.
  explicit PhysicalMemory(uint64_t size_bytes, uint32_t num_nodes = 1);

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  // Optional deterministic failure injection; consulted by the Try*
  // allocators. Not owned. Pass nullptr to detach.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // Lifecycle observers (LRU maintenance, KSM stable-tree pruning). Not
  // owned; notified in registration order.
  void AddObserver(FrameLifecycleObserver* observer) {
    observers_.push_back(observer);
  }

  // Allocates one frame of the given kind with ref_count 1, or nullopt if
  // physical memory is exhausted (or a fault was injected). When the
  // preferred node is exhausted the allocation falls back to another node
  // and numa_fallbacks() is bumped — the signal the per-node kswapd
  // watermarks exist to keep rare.
  std::optional<FrameNumber> TryAllocFrame(FrameKind kind);

  // Node-strict variant: allocates on exactly `node` or fails. Used by
  // the NUMA page-table engine, whose replicas are worthless off-node.
  std::optional<FrameNumber> TryAllocFrameOnNode(uint32_t node,
                                                 FrameKind kind);

  // Allocates `count` physically contiguous frames (first-fit, naturally
  // aligned) and returns the first frame number; each frame gets
  // ref_count 1. Needed for 64 KB large pages, whose 16 backing frames
  // must be contiguous and naturally aligned. Returns nullopt when no
  // run exists (fragmentation counts: free_frames() may exceed `count`
  // and this can still fail).
  std::optional<FrameNumber> TryAllocContiguousFrames(uint32_t count,
                                                      FrameKind kind);

  // Infallible wrappers: SAT_CHECK-abort instead of returning failure.
  FrameNumber AllocFrame(FrameKind kind);
  FrameNumber AllocContiguousFrames(uint32_t count, FrameKind kind);

  // Drops one reference; frees the frame when the count reaches zero.
  // Returns true if the frame was actually freed.
  bool UnrefFrame(FrameNumber frame);

  void RefFrame(FrameNumber frame);

  // Pulls a suspect frame out of circulation: a free frame flips to
  // kQuarantined immediately; a live frame is flagged and quarantined when
  // its last reference drops. Quarantined frames are never re-issued by
  // any allocator path. Returns true if the frame was newly condemned
  // (false when it was already quarantined or flagged, or is a permanent
  // zero/kernel frame).
  bool QuarantineFrame(FrameNumber frame);

  // Frames currently in the kQuarantined state (pending flags excluded).
  uint64_t quarantined_frames() const { return quarantined_count_; }

  PageFrame& frame(FrameNumber number);
  const PageFrame& frame(FrameNumber number) const;

  // The always-present shared zero page backing untouched anon reads.
  FrameNumber zero_frame() const { return zero_frame_; }

  // NUMA topology.
  uint32_t num_nodes() const { return num_nodes_; }
  uint64_t frames_per_node() const { return frames_per_node_; }
  uint32_t NodeOfFrame(FrameNumber frame) const {
    return static_cast<uint32_t>(frame / frames_per_node_);
  }
  // First-touch policy: the kernel sets this to the node of the core that
  // is about to fault a page in, so new frames land node-local.
  void set_preferred_node(uint32_t node) { preferred_node_ = node; }
  uint32_t preferred_node() const { return preferred_node_; }

  uint64_t total_frames() const { return frames_.size(); }
  uint64_t free_frames() const { return free_count_; }
  uint64_t used_frames() const { return frames_.size() - free_count_; }
  uint64_t used_bytes() const { return used_frames() * kPageSize; }

  // Per-node free-frame accounting, so kswapd can watch each node's
  // watermark instead of only the global one (a single node can exhaust
  // and silently push every allocation remote while the machine-wide
  // count looks healthy).
  uint64_t free_frames_on_node(uint32_t node) const {
    return free_count_per_node_[node];
  }

  // Allocations that wanted the preferred node but were served remote.
  uint64_t numa_fallbacks() const { return numa_fallbacks_; }
  // Contiguous runs handed out straddling a node boundary.
  uint64_t numa_cross_node_runs() const { return numa_cross_node_runs_; }

  // Number of live frames of a given kind (O(n); for tests and reports).
  uint64_t CountFrames(FrameKind kind) const;

  std::string ToString() const;

 private:
  // Pops the next genuinely free frame of `node`'s list, skipping entries
  // claimed out-of-band by TryAllocContiguousFrames. Returns nullopt when
  // the node is exhausted.
  std::optional<FrameNumber> PopFreeFrame(uint32_t node);

  // Shared tail of the Try* allocators: metadata reset, free-count
  // bookkeeping, observer notification.
  void FinishAlloc(FrameNumber number, FrameKind kind);

  // True when frames [base, base+count) are all free.
  bool RunIsFree(uint64_t base, uint32_t count) const;

  std::vector<PageFrame> frames_;
  // One free list per NUMA node (a single list on single-node machines).
  std::vector<std::vector<FrameNumber>> free_lists_;
  // Whether a frame currently has an entry in its node's free list
  // (entries can go stale when AllocContiguousFrames claims frames
  // out-of-band; stale entries are skipped and discarded by AllocFrame).
  std::vector<bool> free_listed_;
  uint64_t free_count_ = 0;
  std::vector<uint64_t> free_count_per_node_;
  uint64_t numa_fallbacks_ = 0;
  uint64_t numa_cross_node_runs_ = 0;
  uint64_t quarantined_count_ = 0;
  uint32_t num_nodes_ = 1;
  uint64_t frames_per_node_ = 0;
  uint32_t preferred_node_ = 0;
  FrameNumber zero_frame_ = 0;
  FaultInjector* injector_ = nullptr;
  std::vector<FrameLifecycleObserver*> observers_;
};

}  // namespace sat

#endif  // SRC_MEM_PHYS_MEMORY_H_
