#include "src/mem/zram.h"

#include "src/arch/check.h"

namespace sat {

ZramStore::ZramStore(PhysicalMemory* phys, uint64_t disksize_bytes,
                     uint64_t seed)
    : phys_(phys), disksize_bytes_(disksize_bytes), rng_(seed) {
  SAT_CHECK(phys_ != nullptr);
}

ZramStore::~ZramStore() {
  // Slots must have been released by task teardown before the store dies;
  // the pool frames are ours to return.
  for (const FrameNumber frame : pool_) {
    phys_->UnrefFrame(frame);
  }
}

uint32_t ZramStore::SampleCompressedSize() {
  // ~5% of pages are incompressible and stored raw; the rest compress to
  // somewhere between 1/8 and 3/4 of a page.
  if (rng_() % 100 < 5) {
    return kPageSize;
  }
  return 512 + static_cast<uint32_t>(rng_() % 2561);
}

bool ZramStore::TryGrowPoolFor(uint32_t extra_bytes) {
  const uint64_t needed =
      (stored_bytes_ + extra_bytes + kPageSize - 1) / kPageSize;
  while (pool_.size() < needed) {
    const std::optional<FrameNumber> frame =
        phys_->TryAllocFrame(FrameKind::kZram);
    if (!frame.has_value()) {
      return false;
    }
    pool_.push_back(*frame);
  }
  return true;
}

void ZramStore::ShrinkPool() {
  const uint64_t needed = (stored_bytes_ + kPageSize - 1) / kPageSize;
  while (pool_.size() > needed) {
    phys_->UnrefFrame(pool_.back());
    pool_.pop_back();
  }
}

std::optional<SwapSlotId> ZramStore::TryStore(uint64_t content,
                                              ZramStoreFailure* why) {
  if (why != nullptr) {
    *why = ZramStoreFailure::kNone;
  }
  if (!enabled()) {
    if (why != nullptr) *why = ZramStoreFailure::kDisabled;
    return std::nullopt;
  }
  if ((live_slot_count_ + 1) * kPageSize > disksize_bytes_) {
    if (why != nullptr) *why = ZramStoreFailure::kStoreFull;
    return std::nullopt;  // logical device full
  }
  // Sample the size first so the PRNG stream is independent of pool-growth
  // failures, then grow the pool before committing any slot state.
  const uint32_t bytes = SampleCompressedSize();
  if (!TryGrowPoolFor(bytes)) {
    if (why != nullptr) *why = ZramStoreFailure::kPoolEnomem;
    return std::nullopt;
  }
  SwapSlotId id;
  if (!free_slot_ids_.empty()) {
    id = free_slot_ids_.back();
    free_slot_ids_.pop_back();
  } else {
    id = static_cast<SwapSlotId>(slots_.size());
    SAT_CHECK(id <= LinuxPte::kMaxSwapSlot);
    slots_.emplace_back();
  }
  Slot& slot = slots_[id];
  slot.live = true;
  slot.ref_count = 1;
  slot.bytes = bytes;
  slot.cached = kNoFrame;
  slot.content = content;
  slot.checksum = ChecksumOf(content);
  live_slot_count_++;
  stored_bytes_ += bytes;
  pages_stored_total_++;
  bytes_compressed_total_ += bytes;
  return id;
}

void ZramStore::Ref(SwapSlotId id) {
  SAT_CHECK(id < slots_.size() && slots_[id].live && "ref of a dead slot");
  slots_[id].ref_count++;
}

void ZramStore::Unref(SwapSlotId id) {
  SAT_CHECK(id < slots_.size() && slots_[id].live && "unref of a dead slot");
  Slot& slot = slots_[id];
  SAT_CHECK(slot.ref_count > 0);
  if (--slot.ref_count == 0) {
    SAT_CHECK(slot.cached == kNoFrame &&
              "a cache entry must hold a slot reference");
    FreeSlot(id);
    return;
  }
  if (slot.ref_count == 1 && slot.cached != kNoFrame) {
    // Only the cache still holds the slot: no swap PTE can fault this copy
    // back in, so drop the compressed copy (try_to_free_swap). This
    // re-enters Unref and frees the slot.
    RemoveFromCache(id);
  }
}

void ZramStore::FreeSlot(SwapSlotId id) {
  Slot& slot = slots_[id];
  SAT_CHECK(stored_bytes_ >= slot.bytes);
  stored_bytes_ -= slot.bytes;
  live_slot_count_--;
  slot = Slot{};
  free_slot_ids_.push_back(id);
  ShrinkPool();
}

void ZramStore::AddToCache(SwapSlotId id, FrameNumber frame) {
  SAT_CHECK(id < slots_.size() && slots_[id].live);
  SAT_CHECK(slots_[id].cached == kNoFrame && "slot already cached");
  SAT_CHECK(cache_by_frame_.find(frame) == cache_by_frame_.end() &&
            "frame already caches another slot");
  slots_[id].cached = frame;
  cache_by_slot_.emplace(id, frame);
  cache_by_frame_.emplace(frame, id);
  slots_[id].ref_count++;
  phys_->RefFrame(frame);
}

void ZramStore::RemoveFromCache(SwapSlotId id) {
  SAT_CHECK(id < slots_.size() && slots_[id].live);
  const FrameNumber frame = slots_[id].cached;
  SAT_CHECK(frame != kNoFrame && "slot not cached");
  slots_[id].cached = kNoFrame;
  cache_by_slot_.erase(id);
  cache_by_frame_.erase(frame);
  phys_->UnrefFrame(frame);
  Unref(id);
}

FrameNumber ZramStore::CacheLookup(SwapSlotId id) const {
  const auto it = cache_by_slot_.find(id);
  return it == cache_by_slot_.end() ? kNoFrame : it->second;
}

std::optional<SwapSlotId> ZramStore::CacheSlotOf(FrameNumber frame) const {
  const auto it = cache_by_frame_.find(frame);
  if (it == cache_by_frame_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool ZramStore::SlotLive(SwapSlotId id) const {
  return id < slots_.size() && slots_[id].live;
}

uint32_t ZramStore::SlotRefCount(SwapSlotId id) const {
  SAT_CHECK(SlotLive(id));
  return slots_[id].ref_count;
}

uint32_t ZramStore::SlotBytes(SwapSlotId id) const {
  SAT_CHECK(SlotLive(id));
  return slots_[id].bytes;
}

uint64_t ZramStore::SlotContent(SwapSlotId id) const {
  SAT_CHECK(SlotLive(id));
  return slots_[id].content;
}

bool ZramStore::SlotChecksumOk(SwapSlotId id) const {
  SAT_CHECK(SlotLive(id));
  return slots_[id].checksum == ChecksumOf(slots_[id].content);
}

void ZramStore::CorruptSlotForChaos(SwapSlotId id, uint64_t xor_mask) {
  SAT_CHECK(SlotLive(id));
  SAT_CHECK(xor_mask != 0 && "corruption must change something");
  slots_[id].content ^= xor_mask;
}

void ZramStore::RepairSlotContent(SwapSlotId id, uint64_t content) {
  SAT_CHECK(SlotLive(id));
  slots_[id].content = content;
  slots_[id].checksum = ChecksumOf(content);
}

std::optional<SwapSlotId> ZramStore::AnyLiveSlot(uint64_t rand) const {
  if (live_slot_count_ == 0) {
    return std::nullopt;
  }
  const SwapSlotId start =
      static_cast<SwapSlotId>(rand % slots_.size());
  for (SwapSlotId i = 0; i < slots_.size(); ++i) {
    const SwapSlotId id =
        static_cast<SwapSlotId>((start + i) % slots_.size());
    if (slots_[id].live) {
      return id;
    }
  }
  return std::nullopt;
}

}  // namespace sat
