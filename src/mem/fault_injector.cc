#include "src/mem/fault_injector.h"

#include "src/arch/check.h"

namespace sat {

const char* AllocSiteName(AllocSite site) {
  switch (site) {
    case AllocSite::kFrame:
      return "frame";
    case AllocSite::kContiguous:
      return "contiguous";
    case AllocSite::kPtp:
      return "ptp";
    case AllocSite::kZram:
      return "zram";
    case AllocSite::kCount:
      break;
  }
  SAT_CHECK(false && "invalid AllocSite");
}

void FaultInjector::Reset() {
  for (uint32_t i = 0; i < kNumSites; ++i) {
    rules_[i] = FaultRule{};
    attempts_[i] = 0;
    injected_[i] = 0;
  }
}

bool FaultInjector::ShouldFail(AllocSite site) {
  const uint32_t i = Index(site);
  SAT_CHECK(i < kNumSites);
  const uint64_t attempt = ++attempts_[i];
  const FaultRule& rule = rules_[i];
  bool fail = false;
  if (rule.fail_nth != 0 && attempt == rule.fail_nth) fail = true;
  if (rule.every_kth != 0 && attempt % rule.every_kth == 0) fail = true;
  if (rule.probability > 0.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    if (dist(rng_) < rule.probability) fail = true;
  }
  if (fail) ++injected_[i];
  return fail;
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (uint32_t i = 0; i < kNumSites; ++i) total += injected_[i];
  return total;
}

}  // namespace sat
