#include "src/mem/fault_injector.h"

#include "src/arch/check.h"

namespace sat {

const char* AllocSiteName(AllocSite site) {
  switch (site) {
    case AllocSite::kFrame:
      return "frame";
    case AllocSite::kContiguous:
      return "contiguous";
    case AllocSite::kPtp:
      return "ptp";
    case AllocSite::kZram:
      return "zram";
    case AllocSite::kCount:
      break;
  }
  SAT_CHECK(false && "invalid AllocSite");
}

const char* CorruptSiteName(CorruptSite site) {
  switch (site) {
    case CorruptSite::kPteWord:
      return "pte-word";
    case CorruptSite::kZramByte:
      return "zram-byte";
    case CorruptSite::kTlbTag:
      return "tlb-tag";
    case CorruptSite::kNumaReplica:
      return "numa-replica";
    case CorruptSite::kCount:
      break;
  }
  SAT_CHECK(false && "invalid CorruptSite");
}

void FaultInjector::Reset() {
  for (uint32_t i = 0; i < kNumSites; ++i) {
    rules_[i] = FaultRule{};
    attempts_[i] = 0;
    injected_[i] = 0;
  }
  for (uint32_t i = 0; i < kNumCorruptSites; ++i) {
    corrupt_rules_[i] = FaultRule{};
    corrupt_attempts_[i] = 0;
    corrupt_injected_[i] = 0;
  }
}

bool FaultInjector::ShouldFail(AllocSite site) {
  const uint32_t i = Index(site);
  SAT_CHECK(i < kNumSites);
  const uint64_t attempt = ++attempts_[i];
  const FaultRule& rule = rules_[i];
  bool fail = false;
  if (rule.fail_nth != 0 && attempt == rule.fail_nth) fail = true;
  if (rule.every_kth != 0 && attempt % rule.every_kth == 0) fail = true;
  if (rule.probability > 0.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    if (dist(rng_) < rule.probability) fail = true;
  }
  if (fail) ++injected_[i];
  return fail;
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (uint32_t i = 0; i < kNumSites; ++i) total += injected_[i];
  return total;
}

bool FaultInjector::ShouldCorrupt(CorruptSite site) {
  const uint32_t i = Index(site);
  SAT_CHECK(i < kNumCorruptSites);
  const uint64_t attempt = ++corrupt_attempts_[i];
  const FaultRule& rule = corrupt_rules_[i];
  bool corrupt = false;
  if (rule.fail_nth != 0 && attempt == rule.fail_nth) corrupt = true;
  if (rule.every_kth != 0 && attempt % rule.every_kth == 0) corrupt = true;
  if (rule.probability > 0.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    if (dist(rng_) < rule.probability) corrupt = true;
  }
  if (corrupt) ++corrupt_injected_[i];
  return corrupt;
}

uint64_t FaultInjector::total_corruptions() const {
  uint64_t total = 0;
  for (uint32_t i = 0; i < kNumCorruptSites; ++i) {
    total += corrupt_injected_[i];
  }
  return total;
}

}  // namespace sat
