// A minimal page cache: the kernel-wide map from (file, page index) to the
// physical frame caching that file page.
//
// This is what makes file-backed *physical* sharing work in the simulation:
// every process mapping page k of libfoo.so's code segment resolves, via
// the page cache, to the same frame — exactly the baseline behaviour the
// paper starts from ("modern operating systems avoid duplication of code
// and data ... through mechanisms like copy-on-write"). What the paper adds
// is sharing of the *translation* structures on top; that lives in src/pt.
//
// A file page's first access is a hard (major) fault that installs the
// frame in the cache; subsequent accesses from any process are soft (minor)
// faults that just take another reference.

#ifndef SRC_MEM_PAGE_CACHE_H_
#define SRC_MEM_PAGE_CACHE_H_

#include <cstdint>
#include <unordered_map>

#include "src/arch/types.h"
#include "src/mem/phys_memory.h"

namespace sat {

class PageCache {
 public:
  explicit PageCache(PhysicalMemory* phys) : phys_(phys) {}

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Returns the frame caching (file, page_index), or kNoFrame if absent.
  static constexpr FrameNumber kNoFrame = static_cast<FrameNumber>(-1);
  FrameNumber Lookup(FileId file, uint32_t page_index) const;

  // Looks up or loads the page. Sets *was_hard_fault to true when the page
  // had to be "read from disk" (allocated fresh). The returned frame holds
  // the cache's own reference; callers mapping it must RefFrame it.
  // Returns kNoFrame when the load fails for want of physical memory
  // (callers reclaim and retry).
  FrameNumber GetOrLoad(FileId file, uint32_t page_index, bool* was_hard_fault);

  // 64 KB large-page support: looks up or loads a naturally aligned
  // 16-page block of the file into 16 *contiguous* physical frames and
  // returns the base frame. `block_index` counts 64 KB blocks from the
  // start of the file. A file's pages must be consistently cached at one
  // granularity; mixing GetOrLoad and GetOrLoadLargeBlock over the same
  // range is a caller error (asserted). Returns kNoFrame when no
  // contiguous run is available (callers fall back to 4 KB pages).
  FrameNumber GetOrLoadLargeBlock(FileId file, uint32_t block_index,
                                  bool* was_hard_fault);

  // Drops one page from the cache, releasing the cache's reference
  // (reclaim's final step; the frame is freed if no PTE still maps it).
  void RemovePage(FileId file, uint32_t page_index);

  // Drops a whole file from the cache (file truncate / unlink analogue).
  void EvictFile(FileId file);

  uint64_t resident_pages() const { return cache_.size(); }

  // Visits every resident page as (file, page_index, frame); for the
  // invariant auditor and reclaim-style scans.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, frame] : cache_) {
      fn(key.file, key.page_index, frame);
    }
  }

 private:
  struct Key {
    FileId file;
    uint32_t page_index;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(static_cast<uint32_t>(k.file)) << 32) |
                                   k.page_index);
    }
  };

  PhysicalMemory* phys_;
  std::unordered_map<Key, FrameNumber, KeyHash> cache_;
};

}  // namespace sat

#endif  // SRC_MEM_PAGE_CACHE_H_
