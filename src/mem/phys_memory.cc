#include "src/mem/phys_memory.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "src/arch/check.h"
#include "src/mem/fault_injector.h"

namespace sat {

PhysicalMemory::PhysicalMemory(uint64_t size_bytes, uint32_t num_nodes)
    : num_nodes_(num_nodes) {
  assert(size_bytes % kPageSize == 0 && "physical memory must be page-sized");
  const uint64_t n = size_bytes / kPageSize;
  assert(n >= 2 && "need at least a zero frame and one usable frame");
  SAT_CHECK(num_nodes >= 1 && "at least one NUMA node");
  frames_.resize(n);
  free_listed_.assign(n, false);
  frames_per_node_ = (n + num_nodes - 1) / num_nodes;
  SAT_CHECK(frames_per_node_ >= 1 && "more NUMA nodes than frames");
  free_lists_.resize(num_nodes);
  // Push high frames first so low frame numbers are handed out first
  // (within each node), which keeps test expectations simple and
  // deterministic. On a single-node machine this is the classic global
  // free list, bit for bit.
  free_count_per_node_.assign(num_nodes, 0);
  for (uint64_t i = n; i-- > 1;) {
    const uint32_t node = NodeOfFrame(static_cast<FrameNumber>(i));
    free_lists_[node].push_back(static_cast<FrameNumber>(i));
    free_listed_[i] = true;
    free_count_per_node_[node]++;
  }
  free_count_ = n - 1;
  // Frame 0 is the permanent shared zero page.
  zero_frame_ = 0;
  frames_[0].kind = FrameKind::kZero;
  frames_[0].ref_count = 1;
}

std::optional<FrameNumber> PhysicalMemory::PopFreeFrame(uint32_t node) {
  std::vector<FrameNumber>& free_list = free_lists_[node];
  // Drop entries claimed out-of-band by TryAllocContiguousFrames.
  while (!free_list.empty() &&
         frames_[free_list.back()].kind != FrameKind::kFree) {
    free_listed_[free_list.back()] = false;
    free_list.pop_back();
  }
  if (free_list.empty()) {
    return std::nullopt;
  }
  const FrameNumber number = free_list.back();
  free_list.pop_back();
  free_listed_[number] = false;
  return number;
}

std::optional<FrameNumber> PhysicalMemory::TryAllocFrame(FrameKind kind) {
  SAT_CHECK(kind != FrameKind::kFree && kind != FrameKind::kZero &&
            kind != FrameKind::kQuarantined);
  if (injector_ != nullptr) {
    const AllocSite site = kind == FrameKind::kPageTable ? AllocSite::kPtp
                           : kind == FrameKind::kZram    ? AllocSite::kZram
                                                         : AllocSite::kFrame;
    if (injector_->ShouldFail(site)) {
      return std::nullopt;
    }
  }
  // First-touch placement: the preferred node first, then the others in
  // ascending order (an off-node fallback beats an allocation failure).
  const uint32_t wanted = preferred_node_ < num_nodes_ ? preferred_node_ : 0;
  std::optional<FrameNumber> popped = PopFreeFrame(wanted);
  for (uint32_t node = 0; !popped.has_value() && node < num_nodes_; ++node) {
    if (node == preferred_node_) {
      continue;
    }
    popped = PopFreeFrame(node);
    if (popped.has_value()) {
      numa_fallbacks_++;
    }
  }
  if (!popped.has_value()) {
    return std::nullopt;
  }
  FinishAlloc(*popped, kind);
  return *popped;
}

std::optional<FrameNumber> PhysicalMemory::TryAllocFrameOnNode(
    uint32_t node, FrameKind kind) {
  SAT_CHECK(node < num_nodes_);
  SAT_CHECK(kind != FrameKind::kFree && kind != FrameKind::kZero &&
            kind != FrameKind::kQuarantined);
  if (injector_ != nullptr) {
    const AllocSite site = kind == FrameKind::kPageTable ? AllocSite::kPtp
                           : kind == FrameKind::kZram    ? AllocSite::kZram
                                                         : AllocSite::kFrame;
    if (injector_->ShouldFail(site)) {
      return std::nullopt;
    }
  }
  const std::optional<FrameNumber> popped = PopFreeFrame(node);
  if (!popped.has_value()) {
    return std::nullopt;  // node-strict: exhaustion here never goes remote
  }
  FinishAlloc(*popped, kind);
  return *popped;
}

void PhysicalMemory::FinishAlloc(FrameNumber number, FrameKind kind) {
  free_count_--;
  free_count_per_node_[NodeOfFrame(number)]--;
  PageFrame& f = frames_[number];
  f.kind = kind;
  f.ref_count = 1;
  f.map_count = 0;
  f.file = kNoFile;
  f.file_page_index = 0;
  f.content = 0;
  f.ksm_stable = false;
  f.quarantine_on_free = false;
  for (FrameLifecycleObserver* observer : observers_) {
    observer->OnFrameAllocated(number, kind);
  }
}

std::optional<FrameNumber> PhysicalMemory::TryAllocContiguousFrames(
    uint32_t count, FrameKind kind) {
  SAT_CHECK(count > 0 && (count & (count - 1)) == 0 &&
            "count must be a power of two");
  SAT_CHECK(kind != FrameKind::kFree && kind != FrameKind::kZero &&
            kind != FrameKind::kQuarantined);
  if (injector_ != nullptr &&
      injector_->ShouldFail(AllocSite::kContiguous)) {
    return std::nullopt;
  }
  const auto claim_run = [this, count, kind](FrameNumber base) {
    for (uint32_t i = 0; i < count; ++i) {
      PageFrame& f = frames_[base + i];
      f.kind = kind;
      f.ref_count = 1;
      f.map_count = 0;
      f.file = kNoFile;
      f.file_page_index = 0;
      f.content = 0;
      f.ksm_stable = false;
      f.quarantine_on_free = false;
      free_count_per_node_[NodeOfFrame(base + i)]--;
      // Remove from the free list lazily: TryAllocFrame skips non-free
      // entries it pops.
      for (FrameLifecycleObserver* observer : observers_) {
        observer->OnFrameAllocated(base + i, kind);
      }
    }
    free_count_ -= count;
  };
  // Node-preferred pass (huged's migration-collapse wants its 64 KB run on
  // the faulting core's node): naturally aligned candidates fully inside
  // the preferred node's frame range.
  if (num_nodes_ > 1) {
    const uint32_t wanted = preferred_node_ < num_nodes_ ? preferred_node_ : 0;
    const uint64_t node_begin = wanted * frames_per_node_;
    const uint64_t node_end =
        std::min<uint64_t>(node_begin + frames_per_node_, frames_.size());
    // Round up to natural alignment; frame 0 is the zero page.
    uint64_t base = std::max<uint64_t>(node_begin, count);
    base = (base + count - 1) / count * count;
    for (; base + count <= node_end; base += count) {
      if (RunIsFree(base, count)) {
        claim_run(static_cast<FrameNumber>(base));
        return static_cast<FrameNumber>(base);
      }
    }
  }
  // Global first-fit scan over naturally aligned candidate runs. Frame 0
  // is the zero page, so candidates start at `count`.
  for (uint64_t base = count; base + count <= frames_.size(); base += count) {
    if (!RunIsFree(base, count)) {
      continue;
    }
    if (num_nodes_ > 1 &&
        NodeOfFrame(static_cast<FrameNumber>(base)) !=
            NodeOfFrame(static_cast<FrameNumber>(base + count - 1))) {
      numa_cross_node_runs_++;
    }
    claim_run(static_cast<FrameNumber>(base));
    return static_cast<FrameNumber>(base);
  }
  return std::nullopt;
}

bool PhysicalMemory::RunIsFree(uint64_t base, uint32_t count) const {
  for (uint32_t i = 0; i < count; ++i) {
    if (frames_[base + i].kind != FrameKind::kFree) {
      return false;
    }
  }
  return true;
}

FrameNumber PhysicalMemory::AllocFrame(FrameKind kind) {
  std::optional<FrameNumber> number = TryAllocFrame(kind);
  SAT_CHECK(number.has_value() &&
            "simulated machine out of physical memory");
  return *number;
}

FrameNumber PhysicalMemory::AllocContiguousFrames(uint32_t count,
                                                  FrameKind kind) {
  std::optional<FrameNumber> base = TryAllocContiguousFrames(count, kind);
  SAT_CHECK(base.has_value() && "no contiguous physical run available");
  return *base;
}

bool PhysicalMemory::UnrefFrame(FrameNumber number) {
  PageFrame& f = frame(number);
  if (f.kind == FrameKind::kZero || f.kind == FrameKind::kKernel) {
    return false;  // permanent frames are never freed
  }
  SAT_CHECK(f.ref_count > 0 && "unref of a dead frame");
  if (--f.ref_count > 0) {
    return false;
  }
  const FrameKind freed_kind = f.kind;
  const bool condemned = f.quarantine_on_free;
  f.kind = condemned ? FrameKind::kQuarantined : FrameKind::kFree;
  f.map_count = 0;
  f.file = kNoFile;
  f.content = 0;
  f.ksm_stable = false;
  f.quarantine_on_free = false;
  if (condemned) {
    // Never re-enters the free list (a stale free-list entry, if any, is
    // skipped and dropped by PopFreeFrame); counted as used forever.
    quarantined_count_++;
  } else {
    if (!free_listed_[number]) {
      free_lists_[NodeOfFrame(number)].push_back(number);
      free_listed_[number] = true;
    }
    free_count_++;
    free_count_per_node_[NodeOfFrame(number)]++;
  }
  for (FrameLifecycleObserver* observer : observers_) {
    observer->OnFrameFreed(number, freed_kind);
  }
  return true;
}

bool PhysicalMemory::QuarantineFrame(FrameNumber number) {
  PageFrame& f = frame(number);
  if (f.kind == FrameKind::kZero || f.kind == FrameKind::kKernel) {
    return false;  // permanent frames cannot leave circulation
  }
  if (f.kind == FrameKind::kQuarantined || f.quarantine_on_free) {
    return false;  // already condemned
  }
  if (f.kind == FrameKind::kFree) {
    f.kind = FrameKind::kQuarantined;
    free_count_--;
    free_count_per_node_[NodeOfFrame(number)]--;
    quarantined_count_++;
    return true;
  }
  f.quarantine_on_free = true;
  return true;
}

void PhysicalMemory::RefFrame(FrameNumber number) {
  PageFrame& f = frame(number);
  SAT_CHECK(f.kind != FrameKind::kFree && "ref of a free frame");
  SAT_CHECK(f.kind != FrameKind::kQuarantined &&
            "ref of a quarantined frame");
  if (f.kind == FrameKind::kZero || f.kind == FrameKind::kKernel) {
    return;  // permanent frames are not reference counted (see UnrefFrame)
  }
  f.ref_count++;
}

PageFrame& PhysicalMemory::frame(FrameNumber number) {
  assert(number < frames_.size());
  return frames_[number];
}

const PageFrame& PhysicalMemory::frame(FrameNumber number) const {
  assert(number < frames_.size());
  return frames_[number];
}

uint64_t PhysicalMemory::CountFrames(FrameKind kind) const {
  uint64_t count = 0;
  for (const PageFrame& f : frames_) {
    if (f.kind == kind) {
      count++;
    }
  }
  return count;
}

std::string PhysicalMemory::ToString() const {
  std::ostringstream os;
  os << "PhysicalMemory{" << used_frames() << "/" << total_frames()
     << " frames used; anon=" << CountFrames(FrameKind::kAnon)
     << " file=" << CountFrames(FrameKind::kFileCache)
     << " pt=" << CountFrames(FrameKind::kPageTable) << "}";
  return os.str();
}

}  // namespace sat
