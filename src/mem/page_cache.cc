#include "src/mem/page_cache.h"

#include <cassert>
#include <vector>

namespace sat {

FrameNumber PageCache::Lookup(FileId file, uint32_t page_index) const {
  const auto it = cache_.find(Key{file, page_index});
  return it == cache_.end() ? kNoFrame : it->second;
}

FrameNumber PageCache::GetOrLoad(FileId file, uint32_t page_index,
                                 bool* was_hard_fault) {
  assert(file != kNoFile);
  const Key key{file, page_index};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    if (was_hard_fault != nullptr) {
      *was_hard_fault = false;
    }
    return it->second;
  }
  const std::optional<FrameNumber> frame =
      phys_->TryAllocFrame(FrameKind::kFileCache);
  if (!frame.has_value()) {
    if (was_hard_fault != nullptr) {
      *was_hard_fault = false;
    }
    return kNoFrame;
  }
  PageFrame& f = phys_->frame(*frame);
  f.file = file;
  f.file_page_index = page_index;
  cache_.emplace(key, *frame);
  if (was_hard_fault != nullptr) {
    *was_hard_fault = true;
  }
  return *frame;
}

FrameNumber PageCache::GetOrLoadLargeBlock(FileId file, uint32_t block_index,
                                           bool* was_hard_fault) {
  assert(file != kNoFile);
  const uint32_t base_page = block_index * kPtesPerLargePage;
  const auto it = cache_.find(Key{file, base_page});
  if (it != cache_.end()) {
    // Already resident; must have been loaded as a block (contiguity).
    assert(phys_->frame(it->second).file_page_index == base_page);
    if (was_hard_fault != nullptr) {
      *was_hard_fault = false;
    }
    return it->second;
  }
  const std::optional<FrameNumber> base =
      phys_->TryAllocContiguousFrames(kPtesPerLargePage, FrameKind::kFileCache);
  if (!base.has_value()) {
    if (was_hard_fault != nullptr) {
      *was_hard_fault = false;
    }
    return kNoFrame;
  }
  for (uint32_t i = 0; i < kPtesPerLargePage; ++i) {
    PageFrame& f = phys_->frame(*base + i);
    f.file = file;
    f.file_page_index = base_page + i;
    const bool inserted =
        cache_.emplace(Key{file, base_page + i}, *base + i).second;
    assert(inserted && "4 KB pages of this range already cached individually");
    (void)inserted;
  }
  if (was_hard_fault != nullptr) {
    *was_hard_fault = true;
  }
  return *base;
}

void PageCache::RemovePage(FileId file, uint32_t page_index) {
  const auto it = cache_.find(Key{file, page_index});
  if (it == cache_.end()) {
    return;
  }
  const FrameNumber frame = it->second;
  cache_.erase(it);
  phys_->UnrefFrame(frame);
}

void PageCache::EvictFile(FileId file) {
  std::vector<Key> dead;
  for (const auto& [key, frame] : cache_) {
    if (key.file == file) {
      dead.push_back(key);
    }
  }
  for (const Key& key : dead) {
    const FrameNumber frame = cache_[key];
    cache_.erase(key);
    phys_->UnrefFrame(frame);
  }
}

}  // namespace sat
