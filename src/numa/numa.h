// NUMA page-table placement engine (the numaPTE experiment).
//
// The paper's headline mechanism shares L2 page-table pages across
// processes to save memory and cache space; numaPTE (PAPERS.md) argues
// the opposite trade on multi-socket machines — replicate page tables
// per NUMA node so hardware walks always hit local DRAM. This engine
// lets the simulator hold both ends of that tension at once:
//
//   * kLocal     — PTPs stay wherever first-touch placed their frame;
//                  remote walks pay the remote-DRAM surcharge (baseline).
//   * kReplicate — numad promotes PTPs that accumulate remote walks to
//                  replicated: one extra 4 KB frame per non-home node,
//                  holding a bit-identical copy of the hardware half.
//                  The walker then fetches PTEs from the walking core's
//                  node-local replica. A *shared* zygote PTP still has
//                  one replica per node, not per process — exactly the
//                  paper-vs-numaPTE memory/locality frontier.
//   * kMigrate   — sole-owner PTPs migrate wholesale to the dominant
//                  accessor's node (no extra memory, no sharing help).
//
// Coherence is write-through: every PTE mutation funnels through
// PageTablePage::Set/Clear/UpdateFlags/RepairHw, which notify this
// engine (PtpWriteObserver) so all replicas are rewritten in the same
// logical operation — one logical shootdown, never a per-replica one.
// Translations never change at promotion/migration time (only the
// physical address the walker loads PTEs from does), so neither needs a
// TLB flush of its own.
//
// Replicas are pure redundancy: under memory pressure they are the
// first thing sacrificed (kswapd stage 0), and scrubd uses majority
// vote across {master, replicas} as a repair source for rotten words.

#ifndef SRC_NUMA_NUMA_H_
#define SRC_NUMA_NUMA_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/arch/pte.h"
#include "src/arch/types.h"
#include "src/mem/phys_memory.h"
#include "src/pt/ptp.h"
#include "src/stats/counters.h"

namespace sat {

// SystemConfig::pt_placement — where page-table pages live on a NUMA
// machine.
enum class PtPlacement : uint8_t {
  kLocal = 0,     // first-touch placement, remote walks pay the surcharge
  kReplicate = 1, // numad replicates hot PTPs to every node
  kMigrate = 2,   // numad migrates sole-owner PTPs to the dominant node
};

constexpr const char* PtPlacementName(PtPlacement placement) {
  switch (placement) {
    case PtPlacement::kLocal:
      return "local";
    case PtPlacement::kReplicate:
      return "replicate";
    case PtPlacement::kMigrate:
      return "migrate";
  }
  return "?";
}

class NumaEngine : public PtpWriteObserver {
 public:
  // One per-node copy of a PTP's hardware half. The frame is a real
  // kPageTable frame on `node` (ref_count 1, map_count 0 — it backs no
  // logical PTP and no L1 entry ever names it); `words` mirrors the 512
  // raw hardware descriptor words of the master.
  struct Replica {
    uint32_t node = 0;
    FrameNumber frame = 0;
    std::array<uint32_t, kPtesPerPtp> words{};
  };

  // `promote_threshold`: remote walks a PTP must accumulate between
  // numad passes before kReplicate promotes it (or kMigrate moves it).
  NumaEngine(PhysicalMemory* phys, PtpAllocator* ptps,
             KernelCounters* counters, PtPlacement placement,
             uint32_t promote_threshold);

  NumaEngine(const NumaEngine&) = delete;
  NumaEngine& operator=(const NumaEngine&) = delete;
  ~NumaEngine() override;

  PtPlacement placement() const { return placement_; }

  // -------------------------------------------------------------------
  // The walk path.
  // -------------------------------------------------------------------

  // Resolves the physical address the hardware walker loads the PTE for
  // (`ptp`, `index`) from, as seen by a core on `node`: the node-local
  // replica when one exists, the master frame otherwise. Also records
  // the walk in the per-PTP accounting numad's policy runs on, and bumps
  // the numa_walks / numa_remote_walks / numa_replica_walks counters.
  PhysAddr ResolveWalk(const PageTablePage& ptp, uint32_t index,
                       uint32_t node);

  // -------------------------------------------------------------------
  // numad: the placement daemon.
  // -------------------------------------------------------------------

  // One policy pass over the walk statistics accumulated since the last
  // pass: under kReplicate, promotes PTPs with >= promote_threshold
  // remote walks to replicated (one replica per non-home node); under
  // kMigrate, moves sole-owner PTPs whose dominant accessor is off-home
  // to that node. Clears the statistics. Returns promotions+migrations.
  uint32_t RunPass();

  // Frees whole replica sets (ascending PtpId) until at least
  // `target_frames` frames came back, or no replica remains. The
  // memory-pressure hook: replicas are pure redundancy, so they are the
  // first sacrifice. Returns frames freed.
  uint64_t ReclaimReplicas(uint64_t target_frames);

  // -------------------------------------------------------------------
  // Coherence (PtpWriteObserver): the single write-through mutation
  // path. Every Set/Clear/UpdateFlags/RepairHw on a master PTP lands
  // here and rewrites all replicas of that PTP in the same operation.
  // -------------------------------------------------------------------
  void OnHwWrite(PtpId ptp, uint32_t index, uint32_t raw_hw) override;
  void OnPtpDestroyed(PtpId ptp) override;

  // -------------------------------------------------------------------
  // scrubd integration: replicas as a repair source.
  // -------------------------------------------------------------------

  // Majority word across {master, replicas} at (`ptp`, `index`), or
  // nullopt when the PTP has no replicas or no strict majority exists.
  std::optional<uint32_t> ReplicaMajorityWord(PtpId ptp,
                                              uint32_t index) const;

  // One full sweep over every replica word (not budget-limited: audits
  // require replicas bit-identical to their master after a scrub).
  // Where master and replicas disagree: a strict majority against the
  // master rewrites the master (RepairHw, which write-through-converges
  // the replicas) and calls `flush_master`; otherwise the disagreeing
  // replicas are rewritten from the master. Returns words repaired.
  uint32_t ScrubReplicaSweep(
      const std::function<void(PtpId, uint32_t index)>& flush_master);

  // Chaos backdoor: XORs `xor_mask` into one replica word, chosen
  // deterministically from `rand` (replica) and `index` (word). Returns
  // false when no replica exists to damage.
  bool CorruptReplicaForChaos(uint64_t rand, uint32_t index,
                              uint32_t xor_mask);

  // -------------------------------------------------------------------
  // Observation (auditor, benches).
  // -------------------------------------------------------------------

  template <typename Fn>
  void ForEachReplica(Fn&& fn) const {
    for (const auto& [id, set] : replicas_) {
      for (const Replica& replica : set) {
        fn(id, replica);
      }
    }
  }

  uint64_t replicated_ptps() const { return replicas_.size(); }
  uint64_t replica_count() const { return replica_count_; }
  uint64_t replica_bytes() const { return replica_count_ * kPageSize; }

 private:
  // Walks recorded against one PTP since the last numad pass.
  struct WalkStats {
    std::vector<uint64_t> per_node;  // indexed by node
    uint64_t remote = 0;             // walks off the master's home node
  };

  uint32_t HomeNodeOf(const PageTablePage& ptp) const {
    return phys_->NodeOfFrame(ptp.frame());
  }
  // Creates replicas of `ptp` on every node but its home (best effort:
  // an exhausted node is skipped). Returns replicas created.
  uint32_t Promote(PageTablePage& ptp);
  // Moves the master frame of a sole-owner PTP to `node`. Returns true
  // on success (false: no frame free on the target node).
  bool Migrate(PageTablePage& ptp, uint32_t node);
  void DropReplicaSet(PtpId ptp);

  PhysicalMemory* phys_;
  PtpAllocator* ptps_;
  KernelCounters* counters_;
  PtPlacement placement_;
  uint32_t promote_threshold_;
  // Ordered containers throughout: numad iterates these, and policy
  // decisions must be deterministic across runs and --jobs shardings.
  std::map<PtpId, std::vector<Replica>> replicas_;
  std::map<PtpId, WalkStats> walk_stats_;
  uint64_t replica_count_ = 0;
};

}  // namespace sat

#endif  // SRC_NUMA_NUMA_H_
