#include "src/numa/numa.h"

#include <utility>

#include "src/arch/check.h"

namespace sat {

NumaEngine::NumaEngine(PhysicalMemory* phys, PtpAllocator* ptps,
                       KernelCounters* counters, PtPlacement placement,
                       uint32_t promote_threshold)
    : phys_(phys),
      ptps_(ptps),
      counters_(counters),
      placement_(placement),
      promote_threshold_(promote_threshold == 0 ? 1 : promote_threshold) {}

NumaEngine::~NumaEngine() {
  for (const auto& [id, set] : replicas_) {
    for (const Replica& replica : set) {
      phys_->UnrefFrame(replica.frame);
    }
  }
}

PhysAddr NumaEngine::ResolveWalk(const PageTablePage& ptp, uint32_t index,
                                 uint32_t node) {
  SAT_CHECK(index < kPtesPerPtp);
  counters_->numa_walks++;
  const auto it = replicas_.find(ptp.id());
  if (it != replicas_.end()) {
    for (const Replica& replica : it->second) {
      if (replica.node == node) {
        // Node-local replica: the walker's PTE fetch is local DRAM.
        counters_->numa_replica_walks++;
        const uint32_t mb = index / kL2EntriesPerTable;
        const uint32_t within = index % kL2EntriesPerTable;
        return FrameToPhys(replica.frame) + 2048 + mb * 1024 + within * 4;
      }
    }
  }
  WalkStats& stats = walk_stats_[ptp.id()];
  if (stats.per_node.empty()) {
    stats.per_node.resize(phys_->num_nodes(), 0);
  }
  stats.per_node[node]++;
  if (HomeNodeOf(ptp) != node) {
    stats.remote++;
    counters_->numa_remote_walks++;
  }
  return ptp.HwEntryPhysAddr(index);
}

uint32_t NumaEngine::RunPass() {
  uint32_t actions = 0;
  if (placement_ == PtPlacement::kReplicate) {
    for (const auto& [id, stats] : walk_stats_) {
      if (stats.remote < promote_threshold_) {
        continue;
      }
      if (replicas_.find(id) != replicas_.end()) {
        continue;  // already replicated (possibly partially — retried below)
      }
      if (ptps_->GetIfLive(id) == nullptr) {
        continue;  // died since the walks were recorded
      }
      if (Promote(ptps_->Get(id)) > 0) {
        actions++;
      }
    }
    // Retry partial sets: a node that was exhausted at promotion time may
    // have frames again (e.g. after kswapd sacrificed other replicas).
    for (const auto& [id, set] : replicas_) {
      if (set.size() + 1 < phys_->num_nodes() &&
          ptps_->GetIfLive(id) != nullptr) {
        Promote(ptps_->Get(id));
      }
    }
  } else if (placement_ == PtPlacement::kMigrate) {
    for (const auto& [id, stats] : walk_stats_) {
      if (stats.remote < promote_threshold_) {
        continue;
      }
      const PageTablePage* ptp = ptps_->GetIfLive(id);
      if (ptp == nullptr || ptps_->SharerCount(id) != 1) {
        continue;  // only sole-owner PTPs migrate; shared ones stay put
      }
      uint32_t dominant = 0;
      uint64_t dominant_walks = 0;
      for (uint32_t node = 0; node < stats.per_node.size(); ++node) {
        if (stats.per_node[node] > dominant_walks) {
          dominant_walks = stats.per_node[node];
          dominant = node;
        }
      }
      if (dominant == HomeNodeOf(*ptp)) {
        continue;
      }
      if (Migrate(ptps_->Get(id), dominant)) {
        actions++;
      }
    }
  }
  walk_stats_.clear();
  return actions;
}

uint32_t NumaEngine::Promote(PageTablePage& ptp) {
  const uint32_t home = HomeNodeOf(ptp);
  std::vector<Replica>& set = replicas_[ptp.id()];
  uint32_t created = 0;
  for (uint32_t node = 0; node < phys_->num_nodes(); ++node) {
    if (node == home) {
      continue;
    }
    bool present = false;
    for (const Replica& replica : set) {
      present |= (replica.node == node);
    }
    if (present) {
      continue;
    }
    const std::optional<FrameNumber> frame =
        phys_->TryAllocFrameOnNode(node, FrameKind::kPageTable);
    if (!frame.has_value()) {
      continue;  // best effort: an exhausted node just keeps walking remote
    }
    Replica replica;
    replica.node = node;
    replica.frame = *frame;
    for (uint32_t i = 0; i < kPtesPerPtp; ++i) {
      replica.words[i] = ptp.hw(i).raw();
    }
    set.push_back(replica);
    replica_count_++;
    created++;
  }
  if (set.empty()) {
    replicas_.erase(ptp.id());
  } else if (created > 0) {
    counters_->numa_replica_promotions++;
  }
  return created;
}

bool NumaEngine::Migrate(PageTablePage& ptp, uint32_t node) {
  const std::optional<FrameNumber> fresh =
      phys_->TryAllocFrameOnNode(node, FrameKind::kPageTable);
  if (!fresh.has_value()) {
    return false;
  }
  const FrameNumber old = ptp.frame();
  // The sharer count lives in the frame's map_count; carry it across.
  phys_->frame(*fresh).map_count = phys_->frame(old).map_count;
  phys_->frame(old).map_count = 0;
  ptp.SetFrameForMigration(*fresh);
  phys_->UnrefFrame(old);
  counters_->numa_ptp_migrations++;
  return true;
}

uint64_t NumaEngine::ReclaimReplicas(uint64_t target_frames) {
  uint64_t freed = 0;
  while (freed < target_frames && !replicas_.empty()) {
    const auto it = replicas_.begin();
    for (const Replica& replica : it->second) {
      phys_->UnrefFrame(replica.frame);
      counters_->numa_replica_reclaims++;
      freed++;
    }
    replica_count_ -= it->second.size();
    replicas_.erase(it);
  }
  return freed;
}

void NumaEngine::OnHwWrite(PtpId ptp, uint32_t index, uint32_t raw_hw) {
  const auto it = replicas_.find(ptp);
  if (it == replicas_.end()) {
    return;
  }
  for (Replica& replica : it->second) {
    replica.words[index] = raw_hw;
    counters_->numa_replica_updates++;
  }
}

void NumaEngine::OnPtpDestroyed(PtpId ptp) {
  DropReplicaSet(ptp);
  walk_stats_.erase(ptp);
}

void NumaEngine::DropReplicaSet(PtpId ptp) {
  const auto it = replicas_.find(ptp);
  if (it == replicas_.end()) {
    return;
  }
  for (const Replica& replica : it->second) {
    phys_->UnrefFrame(replica.frame);
  }
  replica_count_ -= it->second.size();
  replicas_.erase(it);
}

std::optional<uint32_t> NumaEngine::ReplicaMajorityWord(PtpId ptp,
                                                        uint32_t index) const {
  SAT_CHECK(index < kPtesPerPtp);
  const auto it = replicas_.find(ptp);
  if (it == replicas_.end() || it->second.empty()) {
    return std::nullopt;
  }
  const PageTablePage* master = ptps_->GetIfLive(ptp);
  if (master == nullptr) {
    return std::nullopt;
  }
  std::vector<uint32_t> words;
  words.reserve(it->second.size() + 1);
  words.push_back(master->hw(index).raw());
  for (const Replica& replica : it->second) {
    words.push_back(replica.words[index]);
  }
  for (const uint32_t candidate : words) {
    size_t votes = 0;
    for (const uint32_t word : words) {
      votes += (word == candidate) ? 1 : 0;
    }
    if (votes * 2 > words.size()) {
      return candidate;
    }
  }
  return std::nullopt;  // even split (e.g. master vs its only replica)
}

uint32_t NumaEngine::ScrubReplicaSweep(
    const std::function<void(PtpId, uint32_t index)>& flush_master) {
  uint32_t repaired = 0;
  for (auto& [id, set] : replicas_) {
    if (ptps_->GetIfLive(id) == nullptr) {
      continue;  // unreachable: OnPtpDestroyed drops the set
    }
    PageTablePage& master = ptps_->Get(id);
    for (uint32_t index = 0; index < kPtesPerPtp; ++index) {
      const uint32_t master_word = master.hw(index).raw();
      bool disagree = false;
      for (const Replica& replica : set) {
        disagree |= (replica.words[index] != master_word);
      }
      if (!disagree) {
        continue;
      }
      const std::optional<uint32_t> majority = ReplicaMajorityWord(id, index);
      if (majority.has_value() && *majority != master_word) {
        // The replicas outvote the master: the master word rotted. Repair
        // it from the majority; the write-through hook reconverges every
        // replica as a side effect.
        master.RepairHw(index, HwPte::FromRaw(*majority));
        counters_->numa_master_repairs++;
        repaired++;
        if (flush_master) {
          flush_master(id, index);
        }
      } else {
        // No majority against the master (two-node machines can only ever
        // split 1-vs-1) or the master IS the majority: trust the master.
        // If the master itself is the rotten copy, the shadow-based scrub
        // pass repairs it and write-through reconverges us afterwards.
        for (Replica& replica : set) {
          if (replica.words[index] != master_word) {
            replica.words[index] = master_word;
            counters_->numa_replica_repairs++;
            repaired++;
          }
        }
      }
    }
  }
  return repaired;
}

bool NumaEngine::CorruptReplicaForChaos(uint64_t rand, uint32_t index,
                                        uint32_t xor_mask) {
  SAT_CHECK(index < kPtesPerPtp);
  SAT_CHECK(xor_mask != 0 && "corruption must change something");
  if (replica_count_ == 0) {
    return false;
  }
  uint64_t target = rand % replica_count_;
  for (auto& [id, set] : replicas_) {
    if (target >= set.size()) {
      target -= set.size();
      continue;
    }
    set[static_cast<size_t>(target)].words[index] ^= xor_mask;
    return true;
  }
  return false;
}

}  // namespace sat
