#include "src/android/profiler.h"

#include <sstream>

namespace sat {

PerfSampler::PerfSampler(ZygoteSystem* system, uint32_t core_index,
                         Cycles interval)
    : system_(system), core_index_(core_index) {
  system_->kernel().core(core_index_).SetSampler(
      interval, [this](VirtAddr va, bool kernel) {
        samples_.push_back(Sample{va, kernel});
      });
}

PerfSampler::~PerfSampler() {
  system_->kernel().core(core_index_).SetSampler(0, nullptr);
}

SampleBreakdown PerfSampler::Analyze(Task& task) const {
  SampleBreakdown breakdown;
  const LibraryCatalog& catalog = system_->catalog();
  for (const Sample& sample : samples_) {
    breakdown.total++;
    if (sample.kernel) {
      breakdown.kernel++;
      continue;
    }
    const VmArea* vma = task.mm->FindVma(sample.va);
    if (vma == nullptr || vma->file == kNoFile) {
      breakdown.unmapped++;
      continue;
    }
    // Catalog-backed files carry their library's category; everything
    // else (apk/oat resource files) is the app's private code.
    CodeCategory category = CodeCategory::kPrivateCode;
    if (vma->file >= 0 && static_cast<size_t>(vma->file) < catalog.size()) {
      category = catalog.Get(static_cast<LibraryId>(vma->file)).category;
    }
    breakdown.user[static_cast<int>(category)]++;
  }
  return breakdown;
}

std::string SampleBreakdown::ToString() const {
  std::ostringstream os;
  os << "samples=" << total << " kernel=" << kernel;
  for (int c = 0; c < 5; ++c) {
    os << " " << CodeCategoryName(static_cast<CodeCategory>(c)) << "="
       << user[c];
  }
  os << " unmapped=" << unmapped;
  return os.str();
}

}  // namespace sat
