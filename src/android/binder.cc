#include "src/android/binder.h"

#include <algorithm>
#include <cassert>
#include <random>

namespace sat {

BinderBenchmark::BinderBenchmark(ZygoteSystem* system,
                                 const BinderParams& params)
    : system_(system), params_(params) {}

void BinderBenchmark::BuildWorkingSets() {
  Kernel& kernel = system_->kernel();
  LibraryCatalog& catalog = system_->catalog();

  // The shared slice of both working sets: the binder call path through
  // the zygote-preloaded libraries. Identical virtual addresses in client
  // and server — the sharing opportunity.
  std::vector<VirtAddr> shared;
  const char* kSharedLibs[] = {"libbinder.so", "libc.so", "libutils.so",
                               "liblog.so", "libcutils.so"};
  for (const char* name : kSharedLibs) {
    const LibraryImage* image = catalog.FindByName(name);
    assert(image != nullptr);
    // Scattered call-path pages: every third page from the head.
    for (uint32_t page = 0;
         page < image->code_pages && shared.size() < params_.shared_pages;
         page += 3) {
      shared.push_back(system_->CodePageVa(image->id, page));
    }
    if (shared.size() >= params_.shared_pages) {
      break;
    }
  }
  assert(shared.size() >= params_.shared_pages);

  // Process-private code: each side maps its own library.
  const LibraryId client_lib = catalog.Register(
      "binder_client.odex", CodeCategory::kPrivateCode,
      std::max(params_.client_own_pages * 8, 8u), 8);
  const LibraryId server_lib = catalog.Register(
      "binder_service.odex", CodeCategory::kPrivateCode,
      std::max(params_.server_own_pages * 2 + 2, 8u), 8);
  const MappedLibrary client_mapped =
      system_->loader().MapAppLibrary(*client_, client_lib);
  const MappedLibrary server_mapped =
      system_->loader().MapAppLibrary(*server_, server_lib);

  client_pages_ = shared;
  // The client's application code has its hot functions at a coarse page
  // stride (section-aligned padding between hot regions, a common .text
  // layout), so its TLB entries pile into a small group of sets and
  // conflict among themselves; the server's handler is a small strided
  // loop spread across sets. This is what gives the client the worst of
  // the TLB capacity pressure — and the most to gain from deduplicating
  // the shared libbinder entries — while the server's entries mostly
  // survive a context switch once ASIDs exist (Figure 13's asymmetry).
  for (uint32_t i = 0; i < params_.client_own_pages; ++i) {
    client_pages_.push_back(client_mapped.code_base + i * 8 * kPageSize);
  }
  server_pages_ = shared;
  for (uint32_t i = 0; i < params_.server_own_pages; ++i) {
    server_pages_.push_back(server_mapped.code_base + (2 * i + 1) * kPageSize);
  }

  // Parcel buffers.
  auto map_buffer = [&](Task& task, const std::string& name) {
    MmapRequest request;
    request.length = 16 * kPageSize;
    request.prot = VmProt::ReadWrite();
    request.kind = VmKind::kAnonPrivate;
    request.name = name;
    const VirtAddr base = kernel.Mmap(task, request).value;
    assert(base != 0);
    return base;
  };
  client_buffer_ = map_buffer(*client_, "binder:client-parcel");
  server_buffer_ = map_buffer(*server_, "binder:server-parcel");
}

BinderResult BinderBenchmark::Run() {
  Kernel& kernel = system_->kernel();
  Core& core = kernel.core();

  // The parent is the service; the client is forked from it, so both are
  // zygote descendants (the real microbenchmark runs inside the Android
  // runtime for exactly this reason — it must exercise the preloaded
  // libbinder).
  server_ = system_->ForkApp("binder_service");
  client_ = kernel.Fork(*server_, "binder_client").child;
  BuildWorkingSets();

  const KernelCounters kernel_before = kernel.counters();
  BinderResult result;
  result.transactions = params_.transactions;

  // The client's own code advances a sliding window each call; the
  // server's handler and the shared call path run in full every call.
  size_t client_own_cursor = 0;
  std::mt19937_64 rng(params_.seed);

  auto fetch = [&](VirtAddr va) {
    core.FetchBurst(va + static_cast<VirtAddr>(rng() % 128) * 32,
                    params_.fetch_burst);
  };

  auto run_hop = [&](Task& task, VirtAddr buffer, BinderSideStats* stats,
                     bool is_client, bool measure) {
    kernel.ScheduleTo(task);
    const CoreCounters before = core.counters();
    // The shared binder path.
    const std::vector<VirtAddr>& pages = is_client ? client_pages_ : server_pages_;
    for (uint32_t i = 0; i < params_.shared_pages; ++i) {
      fetch(pages[i]);
    }
    if (is_client) {
      for (uint32_t i = 0; i < params_.client_own_per_hop; ++i) {
        fetch(pages[params_.shared_pages +
                    (client_own_cursor + i) % params_.client_own_pages]);
      }
      client_own_cursor = (client_own_cursor + params_.client_own_per_hop) %
                          params_.client_own_pages;
    } else {
      for (uint32_t i = 0; i < params_.server_own_pages; ++i) {
        fetch(pages[params_.shared_pages + i]);
      }
    }
    for (uint32_t i = 0; i < params_.data_accesses_per_hop; ++i) {
      if ((i & 1) == 0) {
        core.Load(buffer + (i % 16) * kPageSize);
      } else {
        core.Store(buffer + (i % 16) * kPageSize);
      }
    }
    // The transaction send/receive kernel path.
    core.RunKernelPath(KernelPath::kBinder, kernel.costs().binder_hop,
                       kernel.costs().binder_kernel_lines);
    if (measure) {
      const CoreCounters delta = core.counters() - before;
      stats->cycles += delta.cycles;
      stats->itlb_stall_cycles += delta.itlb_stall_cycles;
      stats->itlb_main_misses += delta.itlb_main_misses;
      stats->inst_lines += delta.inst_fetch_lines;
    }
  };

  for (uint32_t t = 0; t < params_.warmup_transactions + params_.transactions;
       ++t) {
    const bool measure = t >= params_.warmup_transactions;
    run_hop(*client_, client_buffer_, &result.client, /*is_client=*/true,
            measure);
    run_hop(*server_, server_buffer_, &result.server, /*is_client=*/false,
            measure);
  }

  const KernelCounters kernel_delta = kernel.counters() - kernel_before;
  result.file_faults = kernel_delta.faults_file_backed;
  result.ptps_allocated = kernel_delta.ptps_allocated;
  result.domain_faults = kernel_delta.domain_faults;

  kernel.Exit(*client_);
  kernel.Exit(*server_);
  return result;
}

}  // namespace sat
