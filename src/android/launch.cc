#include "src/android/launch.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <random>

#include "src/arch/check.h"
#include "src/trace/trace.h"

namespace sat {

LaunchSimulator::LaunchSimulator(ZygoteSystem* system,
                                 const LaunchParams& params)
    : system_(system), params_(params) {
  // The common ART startup path: the hottest slice of the preload set.
  // Generated with the same head-biased machinery as the zygote's boot
  // footprint, so most launch pages are among those the zygote already
  // populated — the Table 3 inheritance that shared PTPs convert into
  // eliminated soft faults.
  launch_path_ = system_->workload().GenerateZygoteFootprint(
      params_.code_pages, params_.seed);

  // Relocation/static-init write targets, spread over the libraries with
  // the largest data segments.
  LibraryCatalog& catalog = system_->catalog();
  std::vector<LibraryId> by_data = catalog.ZygotePreloadSet();
  std::sort(by_data.begin(), by_data.end(), [&](LibraryId a, LibraryId b) {
    return catalog.Get(a).data_pages > catalog.Get(b).data_pages;
  });
  std::mt19937_64 rng(params_.seed ^ 0xBF58476D1CE4E5B9ull);
  uint32_t remaining = params_.data_writes;
  for (uint32_t i = 0; i < params_.dirty_libs && remaining > 0 &&
                       i < by_data.size();
       ++i) {
    const LibraryImage& image = catalog.Get(by_data[i]);
    if (image.data_pages == 0) {
      continue;
    }
    const uint32_t here = std::min(
        remaining, std::max(1u, params_.data_writes / params_.dirty_libs));
    for (uint32_t j = 0; j < here; ++j) {
      data_writes_.push_back(DataWrite{
          by_data[i], static_cast<uint32_t>(rng() % image.data_pages)});
    }
    remaining -= here;
  }

  // The system_server side of the launch IPCs: its hot inherited pages.
  const AppFootprint& boot = system_->zygote_boot_footprint();
  for (size_t i = 0; i < boot.pages.size() && server_pages_.size() < 120; ++i) {
    server_pages_.push_back(
        system_->CodePageVa(boot.pages[i].lib, boot.pages[i].page_index));
  }

  app_file_ = 2000000;  // the Helloworld apk/oat "file"
}

LaunchResult LaunchSimulator::LaunchOnce(uint32_t round) {
  Kernel& kernel = system_->kernel();
  Core& core = kernel.core();

  // Figure 9 counts page-table growth over the whole launch procedure,
  // fork included; the *time* window (Figures 7-8) starts only when the
  // child first executes, matching the paper's measurement boundaries.
  const KernelCounters kernel_before = kernel.counters();

  Tracer* tracer = &kernel.tracer();
  TraceSpan launch_span(tracer, TraceEventType::kAppPhase);
  launch_span.set_args(static_cast<uint64_t>(AppPhase::kLaunch), round);

  Task* app = system_->ForkApp("helloworld");
  // The cycle-level launch pipeline has no partial-run reporting; a
  // machine too small to hold zygote + one app fails loudly instead.
  SAT_CHECK(app != nullptr && "launch fork failed: out of physical memory");
  launch_span.set_pid(app->pid);
  kernel.ScheduleTo(*app);

  // The app's own code/resources and heap.
  MmapRequest file_request;
  file_request.length = std::max(params_.private_pages, 1u) * kPageSize;
  file_request.prot = VmProt::ReadExec();
  file_request.kind = VmKind::kFilePrivate;
  file_request.file = app_file_;
  file_request.name = "helloworld:oat";
  const VirtAddr private_base = kernel.Mmap(*app, file_request).value;
  SAT_CHECK(private_base != 0 && "launch mmap failed: out of physical memory");

  MmapRequest heap_request;
  heap_request.length = std::max(params_.anon_pages, 1u) * kPageSize;
  heap_request.prot = VmProt::ReadWrite();
  heap_request.kind = VmKind::kAnonPrivate;
  heap_request.name = "helloworld:heap";
  const VirtAddr heap_base = kernel.Mmap(*app, heap_request).value;
  SAT_CHECK(heap_base != 0 && "launch mmap failed: out of physical memory");

  // -------------------------------------------------------------------
  // Window start.
  // -------------------------------------------------------------------
  const CoreCounters core_before = core.counters();

  std::optional<TraceSpan> window_span;
  window_span.emplace(tracer, TraceEventType::kAppPhase, app->pid);
  window_span->set_args(static_cast<uint64_t>(AppPhase::kWindow), round);

  std::mt19937_64 rng(params_.seed * 1000003 + round);

  // First-touch order: every launch page once, then weighted revisits.
  std::vector<VirtAddr> pages;
  pages.reserve(launch_path_.pages.size() + params_.private_pages);
  for (const TouchedPage& page : launch_path_.pages) {
    pages.push_back(system_->CodePageVa(page.lib, page.page_index));
  }
  for (uint32_t i = 0; i < params_.private_pages; ++i) {
    pages.push_back(private_base + i * kPageSize);
  }
  std::shuffle(pages.begin(), pages.end(), rng);

  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const uint32_t entries = params_.fetch_entries;
  const uint32_t write_window = entries / 5;  // relocations happen early
  uint32_t next_write = 0;
  uint32_t next_anon = 0;
  uint32_t next_ipc = 1;

  for (uint32_t i = 0; i < entries; ++i) {
    // Interleaved events.
    if (next_write < data_writes_.size() &&
        i >= next_write * write_window / std::max<size_t>(data_writes_.size(), 1)) {
      const DataWrite& write = data_writes_[next_write++];
      core.Store(system_->DataPageVa(write.lib, write.page_index));
    }
    if (next_anon < params_.anon_pages &&
        i >= next_anon * entries / std::max(params_.anon_pages, 1u)) {
      core.Store(heap_base + next_anon * kPageSize);
      next_anon++;
    }
    if (next_ipc <= params_.ipc_roundtrips &&
        i >= next_ipc * entries / (params_.ipc_roundtrips + 1)) {
      next_ipc++;
      // Round trip to the system_server.
      core.RunKernelPath(KernelPath::kBinder, kernel.costs().binder_hop,
                         kernel.costs().binder_kernel_lines);
      kernel.ScheduleTo(*system_->system_server());
      for (uint32_t s = 0; s < 30; ++s) {
        core.FetchBurst(server_pages_[(s * 7 + round) % server_pages_.size()],
                        params_.fetch_burst);
      }
      core.RunKernelPath(KernelPath::kBinder, kernel.costs().binder_hop,
                         kernel.costs().binder_kernel_lines);
      kernel.ScheduleTo(*app);
    }

    // The instruction stream itself.
    VirtAddr va;
    if (i < pages.size()) {
      va = pages[i];
    } else {
      const double u = uniform(rng);
      va = pages[static_cast<size_t>(u * u * static_cast<double>(pages.size()))];
    }
    // Line selection: each page has a small cluster of hot lines (the
    // functions actually executed) at a page-specific offset — launch
    // code has strong spatial locality, so the instruction working set is
    // a dozen lines per page, not all 128, and the per-page offset keeps
    // cache-set usage spread the way real code layouts do.
    const uint32_t hot_base = ((va >> kPageShift) * 2654435761u) % 116;
    const double lu = uniform(rng);
    const uint32_t line = hot_base + static_cast<uint32_t>(lu * lu * lu * 20.0);
    core.FetchBurst(va + line * 32, params_.fetch_burst);
  }

  // -------------------------------------------------------------------
  // Window end.
  // -------------------------------------------------------------------
  window_span.reset();
  const CoreCounters core_delta = core.counters() - core_before;
  const KernelCounters kernel_delta = kernel.counters() - kernel_before;

  LaunchResult result;
  result.exec_cycles = core_delta.cycles;
  result.icache_stall_cycles = core_delta.icache_stall_cycles;
  result.itlb_stall_cycles = core_delta.itlb_stall_cycles;
  result.file_faults = kernel_delta.faults_file_backed;
  result.ptps_allocated = kernel_delta.ptps_allocated;
  result.kernel_inst_lines = core_delta.kernel_inst_lines;
  result.user_inst_lines = core_delta.user_inst_lines;

  kernel.Exit(*app);
  return result;
}

}  // namespace sat
