#include "src/android/zygote.h"

#include <algorithm>
#include <cassert>
#include <random>

namespace sat {

namespace {

// Placement of the zygote's anonymous heaps: one region per 2 MB slot so
// the stock fork's per-slot PTP cost is visible, as on the real platform
// where the Dalvik/ART heaps span many PTPs.
constexpr VirtAddr kAnonHeapBase = 0x20000000;
constexpr VirtAddr kStackTop = 0xBE800000;

}  // namespace

ZygoteSystem::ZygoteSystem(const ZygoteParams& params)
    : params_(params), catalog_(LibraryCatalog::AndroidDefault()) {
  kernel_ = std::make_unique<Kernel>(params_.kernel);
  loader_ = std::make_unique<DynamicLoader>(kernel_.get(), &catalog_,
                                            params_.mapping_policy);
  loader_->set_large_code_pages(params_.large_code_pages);
  workload_ = std::make_unique<WorkloadFactory>(&catalog_);
  Boot();
}

void ZygoteSystem::Boot() {
  Kernel& kernel = *kernel_;

  init_ = kernel.CreateTask("init");
  zygote_ = kernel.Fork(*init_, "zygote").child;
  kernel.Exec(*zygote_, "app_process(zygote)", /*is_zygote=*/true);
  kernel.SetCurrent(*zygote_);

  // Preload the 88 shared objects; the kernel's mmap policy marks the code
  // segments global because the caller holds the zygote flag.
  loader_->PreloadAll(*zygote_);

  // Eager 1 MB sections over the preload set's code (the translation-
  // reach engine's boot-time contribution; no-op unless `huge` is on).
  kernel.MapZygoteSections(*zygote_);

  // Stack (excluded from PTP sharing as a design choice).
  MmapRequest stack_request;
  stack_request.length = 1024 * kPageSize;  // 4 MB reservation
  stack_request.prot = VmProt::ReadWrite();
  stack_request.kind = VmKind::kAnonPrivate;
  stack_request.fixed_address = kStackTop - 1024 * kPageSize;
  stack_request.is_stack = true;
  stack_request.name = "[stack]";
  const VirtAddr stack_base = kernel.Mmap(*zygote_, stack_request).value;
  for (uint32_t i = 0; i < params_.stack_pages; ++i) {
    kernel.TouchPage(*zygote_,
                     kStackTop - (i + 1) * kPageSize, AccessType::kWrite);
  }
  (void)stack_base;

  // Anonymous heaps (ART heap, linker allocations, property areas, ...).
  for (uint32_t region = 0; region < params_.anon_regions; ++region) {
    MmapRequest anon_request;
    anon_request.length = kPtpSpan;  // one 2 MB slot each
    anon_request.prot = VmProt::ReadWrite();
    anon_request.kind = VmKind::kAnonPrivate;
    anon_request.fixed_address = kAnonHeapBase + region * kPtpSpan;
    anon_request.name = "[anon:heap" + std::to_string(region) + "]";
    const VirtAddr base = kernel.Mmap(*zygote_, anon_request).value;
    for (uint32_t page = 0; page < params_.anon_pages_per_region; ++page) {
      kernel.TouchPage(*zygote_, base + page * kPageSize, AccessType::kWrite);
    }
  }

  // Boot-time execution: touch the hottest pages of the preload set.
  boot_footprint_ =
      workload_->GenerateZygoteFootprint(params_.boot_code_pages, params_.seed);
  for (const TouchedPage& page : boot_footprint_.pages) {
    kernel.TouchPage(*zygote_, CodePageVa(page.lib, page.page_index),
                     AccessType::kExecute);
  }

  // Static initialization dirties library data (COW copies in place).
  {
    std::mt19937_64 rng(params_.seed ^ 0xD1B54A32D192ED03ull);
    const auto preload = catalog_.ZygotePreloadSet();
    // Dirty the biggest data segments first (boot image, libart, ...).
    std::vector<LibraryId> by_data(preload.begin(), preload.end());
    std::sort(by_data.begin(), by_data.end(), [&](LibraryId a, LibraryId b) {
      return catalog_.Get(a).data_pages > catalog_.Get(b).data_pages;
    });
    uint32_t remaining = params_.boot_data_writes;
    for (LibraryId lib : by_data) {
      if (remaining == 0) {
        break;
      }
      const LibraryImage& image = catalog_.Get(lib);
      if (image.data_pages == 0) {
        continue;
      }
      // Concentrated in the few biggest data segments (boot image, ART,
      // webview): static init dirties about half of each.
      const uint32_t here = std::min(remaining, std::max(1u, image.data_pages / 2));
      for (uint32_t i = 0; i < here; ++i) {
        const auto page = static_cast<uint32_t>(rng() % image.data_pages);
        kernel.TouchPage(*zygote_, DataPageVa(lib, page), AccessType::kWrite);
      }
      remaining -= here;
    }
  }

  // The system_server: the first zygote child, running Android's core
  // services (it is the peer of every app-launch IPC).
  system_server_ = kernel.Fork(*zygote_, "system_server").child;
}

Task* ZygoteSystem::ForkApp(const std::string& name) {
  return ForkAppWithStats(name).child;
}

ForkOutcome ZygoteSystem::ForkAppWithStats(const std::string& name) {
  return kernel_->Fork(*zygote_, name);
}

VirtAddr ZygoteSystem::CodePageVa(LibraryId lib, uint32_t page_index) const {
  const MappedLibrary* mapped = loader_->FindZygoteMapping(lib);
  assert(mapped != nullptr && "library was not preloaded by the zygote");
  assert(page_index < catalog_.Get(lib).code_pages);
  return mapped->code_base + page_index * kPageSize;
}

VirtAddr ZygoteSystem::DataPageVa(LibraryId lib, uint32_t page_index) const {
  const MappedLibrary* mapped = loader_->FindZygoteMapping(lib);
  assert(mapped != nullptr && "library was not preloaded by the zygote");
  assert(page_index < catalog_.Get(lib).data_pages);
  return mapped->data_base + page_index * kPageSize;
}

uint32_t ZygoteSystem::CountInheritedPtes(Task& task,
                                          const AppFootprint& fp) const {
  const PageTable& pt = task.mm->page_table();
  uint32_t inherited = 0;
  for (const TouchedPage& page : fp.pages) {
    if (!IsZygotePreloadedCategory(page.category)) {
      continue;
    }
    const auto ref = pt.FindPte(CodePageVa(page.lib, page.page_index));
    if (ref.has_value() && ref->ptp->hw(ref->index).valid()) {
      inherited++;
    }
  }
  return inherited;
}

}  // namespace sat
