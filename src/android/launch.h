// LaunchSimulator: the cycle-level application-launch experiment of
// Figures 7-9.
//
// The measured window matches the paper's: it begins when the zygote-child
// process first starts executing and ends right before app-specific Java
// classes load — a code path that is identical across applications (the
// Helloworld benchmark). One launch is:
//
//   fork from the zygote (before the window, as in the paper) →
//   [window start] relocation/static-init writes into library data
//   segments (these unshare PTPs; with the original layout they take the
//   co-resident *code* translations down with them), the common ART
//   startup instruction stream through the preloaded libraries, a few
//   binder round-trips with the system_server, heap warm-up
//   [window end] → exit.
//
// Repeated launches expose the steady state the paper reports: pages a
// launch populates in *shared* PTPs persist in the zygote's page table and
// are inherited by the next launch, while pages populated after an unshare
// die with the app — which is why 2 MB alignment (code PTPs never unshare)
// beats the original layout.

#ifndef SRC_ANDROID_LAUNCH_H_
#define SRC_ANDROID_LAUNCH_H_

#include <cstdint>
#include <vector>

#include "src/android/zygote.h"

namespace sat {

struct LaunchParams {
  uint32_t code_pages = 1850;      // common launch path, zygote-preloaded
  uint32_t private_pages = 60;     // the app's own apk/oat pages
  uint32_t data_writes = 90;       // relocation/static-init writes
  uint32_t dirty_libs = 12;
  uint32_t anon_pages = 120;       // heap warm-up
  uint32_t fetch_entries = 700000;  // trace entries per launch
  uint32_t fetch_burst = 100;       // instructions represented per entry
  uint32_t ipc_roundtrips = 8;     // system_server round-trips
  uint64_t seed = 7;
};

struct LaunchResult {
  Cycles exec_cycles = 0;
  Cycles icache_stall_cycles = 0;
  Cycles itlb_stall_cycles = 0;
  uint64_t file_faults = 0;
  uint64_t ptps_allocated = 0;
  uint64_t kernel_inst_lines = 0;
  uint64_t user_inst_lines = 0;
};

class LaunchSimulator {
 public:
  LaunchSimulator(ZygoteSystem* system, const LaunchParams& params);

  // One complete launch (fork → window → exit). `round` perturbs the
  // trace order the way run-to-run variation would.
  LaunchResult LaunchOnce(uint32_t round);

  const AppFootprint& launch_path() const { return launch_path_; }

 private:
  ZygoteSystem* system_;
  LaunchParams params_;
  AppFootprint launch_path_;            // the common ART startup footprint
  std::vector<DataWrite> data_writes_;  // relocation targets
  std::vector<VirtAddr> server_pages_;  // system_server side of the IPCs
  FileId app_file_;
};

}  // namespace sat

#endif  // SRC_ANDROID_LAUNCH_H_
