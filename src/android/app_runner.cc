#include "src/android/app_runner.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <random>
#include <vector>

#include "src/arch/check.h"
#include "src/trace/trace.h"

namespace sat {

namespace {

// Allocates a 2 MB-aligned spot for a private region. Real Android
// address spaces scatter their private mappings — dex caches, resource
// mmaps, ashmem, GC heap fragments — across the address space rather than
// packing them, which is why an app owns on the order of a hundred
// private page-table pages that no sharing scheme can eliminate
// (Figure 11's stock baseline).
// Returns 0 when physical memory stayed exhausted even after the kernel's
// reclaim/OOM-kill chain (the run is then reported as incomplete).
VirtAddr MapScattered(Kernel& kernel, Task& task, uint32_t pages, VmProt prot,
                      VmKind kind, FileId file, const std::string& name) {
  const auto spot = task.mm->FindFreeRangeAligned(
      pages * kPageSize, kPtpSpan, 0x10000000, 0xB0000000);
  SAT_CHECK(spot.has_value() && "address space exhausted");
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = prot;
  request.kind = kind;
  request.file = file;
  request.fixed_address = *spot;
  request.name = name;
  const VirtAddr at = kernel.Mmap(task, request).value;
  SAT_CHECK(at == *spot || at == 0);
  return at;
}

}  // namespace

VirtAddr AppRunner::ResolveCodeVa(const RunLayout& layout,
                                  const TouchedPage& page) const {
  if (IsZygotePreloadedCategory(page.category)) {
    return system_->CodePageVa(page.lib, page.page_index);
  }
  const auto it = layout.app_libs.find(page.lib);
  assert(it != layout.app_libs.end() && "unmapped app library");
  return it->second.code_base + page.page_index * kPageSize;
}

AppRunStats AppRunner::Run(const AppFootprint& fp, bool exit_after) {
  Kernel& kernel = system_->kernel();
  AppRunStats stats;
  stats.app_name = fp.app_name;

  const KernelCounters before = kernel.counters();

  Tracer* tracer = &kernel.tracer();
  TraceSpan run_span(tracer, TraceEventType::kAppPhase);
  run_span.set_args(static_cast<uint64_t>(AppPhase::kRun));

  Task* app;
  {
    TraceSpan fork_span(tracer, TraceEventType::kAppPhase);
    fork_span.set_args(static_cast<uint64_t>(AppPhase::kForkApp));
    app = system_->ForkApp(fp.app_name);
    if (app == nullptr) {
      // Fork failed with ENOMEM even after reclaim and OOM-kills.
      stats.completed = false;
      return stats;
    }
    fork_span.set_pid(app->pid);
  }
  run_span.set_pid(app->pid);
  kernel.SetCurrent(*app);
  stats.inherited_ptes = system_->CountInheritedPtes(*app, fp);

  std::optional<TraceSpan> map_span;
  map_span.emplace(tracer, TraceEventType::kAppPhase, app->pid);
  map_span->set_args(static_cast<uint64_t>(AppPhase::kMap));

  std::mt19937_64 rng(std::hash<std::string>{}(fp.app_name) ^ 0xABCDEF123456ull);

  // -------------------------------------------------------------------
  // Map the app-local pieces.
  // -------------------------------------------------------------------
  RunLayout layout;
  for (LibraryId lib : fp.other_libs) {
    layout.app_libs.emplace(lib, system_->loader().MapAppLibrary(*app, lib));
  }
  if (fp.private_code_lib >= 0) {
    layout.app_libs.emplace(fp.private_code_lib,
                            system_->loader().MapAppLibrary(*app, fp.private_code_lib));
  }

  // Under memory pressure any of the mappings below can fail outright
  // (Mmap returns 0 once reclaim and the OOM killer are both spent); the
  // run then replays whatever was established and reports !completed.
  // An Mmap can also come back with the app itself dead: the OOM killer
  // or an oops chose it as a victim mid-syscall.
  bool out_of_memory = false;

  // Private file mappings (apk, resources, fonts, databases): many small
  // scattered regions.
  std::vector<VirtAddr> file_pages;
  {
    uint32_t remaining = fp.private_file_pages;
    uint32_t region_index = 0;
    while (remaining > 0 && !out_of_memory && app->alive) {
      const uint32_t here = std::min(remaining, 48u);
      const VirtAddr base = MapScattered(
          kernel, *app, here, VmProt::ReadOnly(), VmKind::kFilePrivate,
          static_cast<FileId>(next_file_id_++),
          fp.app_name + ":file" + std::to_string(region_index++));
      if (base == 0) {
        out_of_memory = true;
        break;
      }
      for (uint32_t i = 0; i < here; ++i) {
        file_pages.push_back(base + i * kPageSize);
      }
      remaining -= here;
    }
  }

  // The heap: fragmented across 2 MB regions (ART GC spaces).
  std::vector<VirtAddr> heap_pages;
  {
    uint32_t remaining = fp.anon_pages;
    uint32_t region_index = 0;
    while (remaining > 0 && !out_of_memory && app->alive) {
      const uint32_t here = std::min(remaining, 256u);
      const VirtAddr base = MapScattered(
          kernel, *app, kPtpSpan / kPageSize, VmProt::ReadWrite(),
          VmKind::kAnonPrivate, kNoFile,
          fp.app_name + ":heap" + std::to_string(region_index++));
      if (base == 0) {
        out_of_memory = true;
        break;
      }
      for (uint32_t i = 0; i < here; ++i) {
        heap_pages.push_back(base + i * kPageSize);
      }
      remaining -= here;
    }
  }

  // Miscellaneous private anonymous regions (JIT caches, thread stacks,
  // ashmem, binder buffers): small, numerous, scattered.
  std::vector<VirtAddr> misc_pages;
  {
    const uint32_t misc_regions =
        50 + std::min<uint32_t>(fp.TotalPages() / 80, 80);
    for (uint32_t region = 0; region < misc_regions && !out_of_memory &&
                             app->alive;
         ++region) {
      const uint32_t pages = 8 + static_cast<uint32_t>(rng() % 17);
      const VirtAddr base = MapScattered(
          kernel, *app, pages, VmProt::ReadWrite(), VmKind::kAnonPrivate,
          kNoFile, fp.app_name + ":misc" + std::to_string(region));
      if (base == 0) {
        out_of_memory = true;
        break;
      }
      const uint32_t touched = std::max(1u, pages / 2);
      for (uint32_t i = 0; i < touched; ++i) {
        misc_pages.push_back(base + i * kPageSize);
      }
    }
  }

  // -------------------------------------------------------------------
  // Build the replay schedule: every touch event in one list, shuffled
  // deterministically, so data writes and heap growth interleave with
  // instruction first-touches.
  // -------------------------------------------------------------------
  struct Event {
    VirtAddr va;
    AccessType access;
  };
  std::vector<Event> events;
  events.reserve(fp.pages.size() + fp.data_writes.size() + heap_pages.size() +
                 file_pages.size() + misc_pages.size() + 512);
  for (const TouchedPage& page : fp.pages) {
    events.push_back(Event{ResolveCodeVa(layout, page), AccessType::kExecute});
  }
  for (const DataWrite& write : fp.data_writes) {
    events.push_back(
        Event{system_->DataPageVa(write.lib, write.page_index), AccessType::kWrite});
  }
  // GOT/vtable reads into every used library's data segment: in the
  // original layout these land in slots the code already occupies; with
  // 2 MB alignment they populate the separate (and still shared) data
  // slots — the Figure 12 gap between 39% and 60% shared.
  for (LibraryId lib : fp.zygote_libs_used) {
    const LibraryImage& image = system_->catalog().Get(lib);
    if (image.data_pages == 0) {
      continue;
    }
    const uint32_t reads = std::min(image.data_pages, 3u);
    for (uint32_t i = 0; i < reads; ++i) {
      events.push_back(Event{
          system_->DataPageVa(lib, static_cast<uint32_t>(rng() % image.data_pages)),
          AccessType::kRead});
    }
  }
  for (VirtAddr va : heap_pages) {
    events.push_back(Event{va, AccessType::kWrite});
  }
  for (VirtAddr va : misc_pages) {
    events.push_back(Event{va, AccessType::kWrite});
  }
  for (VirtAddr va : file_pages) {
    events.push_back(Event{va, AccessType::kRead});
  }
  std::shuffle(events.begin(), events.end(), rng);
  map_span.reset();

  if (app->alive) {
    TraceSpan replay_span(tracer, TraceEventType::kAppPhase, app->pid);
    replay_span.set_args(static_cast<uint64_t>(AppPhase::kReplay));
    for (const Event& event : events) {
      const TouchStatus status =
          kernel.TouchPageStatus(*app, event.va, event.access);
      if (status == TouchStatus::kOomKill) {
        // The app itself was the last remaining OOM victim: stop the
        // replay; its address space is already torn down.
        stats.oom_killed = true;
        break;
      }
      if (status == TouchStatus::kOopsKill) {
        // A recoverable oops killed the app to contain corrupted state it
        // was touching or sharing; the rest of the system keeps running.
        stats.oops_killed = true;
        break;
      }
      SAT_CHECK(status == TouchStatus::kOk &&
                "replay touched an unmapped address");
    }
  }
  // A kill can also land while a *mapping* syscall above was in progress;
  // fold that in from the task flags.
  stats.oom_killed = stats.oom_killed || app->oom_killed;
  stats.oops_killed = stats.oops_killed || app->oops_killed;
  stats.completed = !out_of_memory && !stats.oom_killed && !stats.oops_killed;

  const KernelCounters delta = kernel.counters() - before;
  stats.file_faults = delta.faults_file_backed;
  stats.anon_faults = delta.faults_anonymous;
  stats.cow_faults = delta.faults_cow;
  stats.ptps_allocated = delta.ptps_allocated;
  stats.ptps_unshared = delta.ptps_unshared;
  stats.ptes_copied = delta.ptes_copied;
  stats.present_slots = app->mm->page_table().PresentSlotCount();
  stats.shared_slots = app->mm->page_table().SharedSlotCount();

  if (exit_after && app->alive) {
    kernel.Exit(*app);
  }
  return stats;
}

}  // namespace sat
