// AppRunner: drives an application's full execution in touch-replay mode
// (page-granular, no cycle simulation) — the machinery behind the
// steady-state experiments (Figures 10-12) and the inherited-PTE counts
// (Table 3).
//
// One run is: fork from the zygote; map the app's own libraries, code and
// resource files; then replay the footprint — instruction pages in a
// seeded shuffled order, library-data writes and heap writes interleaved —
// so unshares happen mid-execution the way real writes would cause them.

#ifndef SRC_ANDROID_APP_RUNNER_H_
#define SRC_ANDROID_APP_RUNNER_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/android/zygote.h"
#include "src/workload/footprint.h"

namespace sat {

struct AppRunStats {
  std::string app_name;
  // Kernel counter deltas over the run (fork + execution window).
  uint64_t file_faults = 0;
  uint64_t anon_faults = 0;
  uint64_t cow_faults = 0;
  uint64_t ptps_allocated = 0;
  uint64_t ptps_unshared = 0;
  uint64_t ptes_copied = 0;
  // Address-space shape at the end of the run.
  uint32_t present_slots = 0;
  uint32_t shared_slots = 0;
  // PTEs of the app's zygote-preloaded footprint already valid at fork.
  uint32_t inherited_ptes = 0;
  // Memory-pressure and damage outcomes. `completed` is false when the
  // run was cut short: the fork failed (ENOMEM), a mapping could not be
  // established, the app was OOM-killed mid-replay (`oom_killed`), or a
  // recoverable kernel oops killed it to contain corrupted state
  // (`oops_killed`). Counter deltas above still cover whatever portion
  // did run.
  bool completed = true;
  bool oom_killed = false;
  bool oops_killed = false;

  double SharedSlotFraction() const {
    return present_slots == 0
               ? 0.0
               : static_cast<double>(shared_slots) /
                     static_cast<double>(present_slots);
  }
};

class AppRunner {
 public:
  explicit AppRunner(ZygoteSystem* system) : system_(system) {}

  // Runs `fp` to completion. When `exit_after`, the task exits at the end
  // (its unshared PTPs are freed; shared-PTP populations it contributed
  // remain visible to future apps — the warm-start effect of Table 3).
  AppRunStats Run(const AppFootprint& fp, bool exit_after = true);

 private:
  // Per-run resolution of app-local (non-preloaded) library pages.
  struct RunLayout {
    std::unordered_map<LibraryId, MappedLibrary> app_libs;
    VirtAddr private_files_base = 0;
  };

  VirtAddr ResolveCodeVa(const RunLayout& layout, const TouchedPage& page) const;

  ZygoteSystem* system_;
  uint32_t next_file_id_ = 1000000;  // private resource "files"
};

}  // namespace sat

#endif  // SRC_ANDROID_APP_RUNNER_H_
