// BinderBenchmark: the Android IPC microbenchmark of Section 4.2.4 /
// Figure 13.
//
// A parent process acts as a service and a child as a client; the client
// binds to the service and invokes its API in a tight synchronous loop.
// Both sides run the zygote-preloaded libbinder code path intensively, and
// both are pinned to one core (the paper uses cpusets), so every
// transaction is two context switches through the same TLB. The
// instruction working sets of the two processes overlap on the shared
// library pages — with TLB sharing those pages cost *one* global entry
// instead of one per ASID, relieving the capacity pressure that the
// 128-entry main TLB otherwise feels on every switch.

#ifndef SRC_ANDROID_BINDER_H_
#define SRC_ANDROID_BINDER_H_

#include <cstdint>
#include <vector>

#include "src/android/zygote.h"

namespace sat {

struct BinderParams {
  uint32_t transactions = 10000;
  uint32_t warmup_transactions = 500;
  // Instruction working-set pages per side: `shared` pages come from the
  // zygote-preloaded libraries (libbinder, libc, libutils) and have
  // identical virtual addresses in both processes; `own` pages are
  // process-private code.
  //
  // The shapes are asymmetric by design, mirroring the microbenchmark:
  // the server's handler is a small, always-hot loop (its TLB entries
  // survive a context switch when ASIDs exist), while the client runs a
  // larger application path that cycles through its own pages over a few
  // transactions — so the client bears the TLB capacity pressure, and
  // deduplicating the shared libbinder entries relieves the client most
  // (the Figure 13 asymmetry: client -36%, server -19%).
  uint32_t shared_pages = 40;         // libbinder/libc call path, both sides
  uint32_t client_own_pages = 60;     // client's application code
  uint32_t client_own_per_hop = 30;   // slice of it executed per call
  uint32_t server_own_pages = 8;      // service handler, fully hot
  uint32_t fetch_burst = 4;
  uint32_t data_accesses_per_hop = 6;  // parcel buffer reads/writes
  uint64_t seed = 11;
};

struct BinderSideStats {
  Cycles cycles = 0;
  Cycles itlb_stall_cycles = 0;
  uint64_t itlb_main_misses = 0;
  uint64_t inst_lines = 0;
};

struct BinderResult {
  BinderSideStats client;
  BinderSideStats server;
  uint64_t transactions = 0;
  uint64_t file_faults = 0;
  uint64_t ptps_allocated = 0;
  uint64_t domain_faults = 0;
};

class BinderBenchmark {
 public:
  BinderBenchmark(ZygoteSystem* system, const BinderParams& params);

  BinderResult Run();

 private:
  void BuildWorkingSets();

  ZygoteSystem* system_;
  BinderParams params_;
  Task* server_ = nullptr;
  Task* client_ = nullptr;
  std::vector<VirtAddr> client_pages_;
  std::vector<VirtAddr> server_pages_;
  VirtAddr client_buffer_ = 0;
  VirtAddr server_buffer_ = 0;
};

}  // namespace sat

#endif  // SRC_ANDROID_BINDER_H_
