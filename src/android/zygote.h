// ZygoteSystem: a booted simulated Android machine.
//
// Boot replays the process-creation model of Section 2.1: init is created,
// the zygote is forked from it and execs app_process (acquiring the zygote
// flag and, with TLB sharing configured, the zygote-domain DACR), preloads
// the 88 shared objects, runs its boot work (touching the hottest pages of
// the preload set — the ~5,900 instruction PTEs of Table 4 — dirtying
// library data, and building its anonymous heaps), and forks the
// system_server. Every application process is subsequently forked from the
// zygote *without* exec, inheriting the preloaded address space
// copy-on-write — which is precisely what makes translations identical
// across apps and PTP/TLB sharing sound.

#ifndef SRC_ANDROID_ZYGOTE_H_
#define SRC_ANDROID_ZYGOTE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/loader/loader.h"
#include "src/proc/kernel.h"
#include "src/workload/footprint.h"

namespace sat {

struct ZygoteParams {
  KernelParams kernel;
  MappingPolicy mapping_policy = MappingPolicy::kOriginal;
  // Map preloaded code with 64 KB large pages (Section 2.3.3 complement).
  bool large_code_pages = false;
  // Boot-time footprint (Table 4 reports 5,900 populated instruction PTEs).
  uint32_t boot_code_pages = 5900;
  // Anonymous heap shape: region count x pages touched per region. With
  // the stock kernel these PTEs are copied at every fork (the 3,900 PTE /
  // 38 PTP cost Table 4 attributes to the stock fork).
  uint32_t anon_regions = 30;
  uint32_t anon_pages_per_region = 100;
  // Library data pages the zygote dirties during boot (static init).
  uint32_t boot_data_writes = 800;
  // Stack pages the zygote has touched (7 in Table 4).
  uint32_t stack_pages = 7;
  uint64_t seed = 42;
};

class ZygoteSystem {
 public:
  explicit ZygoteSystem(const ZygoteParams& params);

  Kernel& kernel() { return *kernel_; }
  DynamicLoader& loader() { return *loader_; }
  WorkloadFactory& workload() { return *workload_; }
  LibraryCatalog& catalog() { return catalog_; }

  Task* zygote() { return zygote_; }
  Task* system_server() { return system_server_; }

  // Forks an application process from the zygote (no exec — the Android
  // model). ForkApp keeps the child-or-nullptr convenience shape; use
  // ForkAppWithStats when the per-fork statistics (Table 4) matter.
  Task* ForkApp(const std::string& name);
  ForkOutcome ForkAppWithStats(const std::string& name);

  // Resolves a footprint page to its virtual address in the canonical
  // (zygote-inherited) layout. Only valid for zygote-preloaded libraries;
  // app-local libraries are resolved through per-task layouts owned by the
  // runner.
  VirtAddr CodePageVa(LibraryId lib, uint32_t page_index) const;
  VirtAddr DataPageVa(LibraryId lib, uint32_t page_index) const;

  // Number of *valid* instruction PTEs in `task`'s page table that back
  // the zygote-preloaded pages listed in `fp` — Table 3's "PTEs inherited
  // from the zygote" when PTPs are shared.
  uint32_t CountInheritedPtes(Task& task, const AppFootprint& fp) const;

  const ZygoteParams& params() const { return params_; }
  const AppFootprint& zygote_boot_footprint() const { return boot_footprint_; }

 private:
  void Boot();

  ZygoteParams params_;
  LibraryCatalog catalog_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<DynamicLoader> loader_;
  std::unique_ptr<WorkloadFactory> workload_;
  Task* init_ = nullptr;
  Task* zygote_ = nullptr;
  Task* system_server_ = nullptr;
  AppFootprint boot_footprint_;
};

}  // namespace sat

#endif  // SRC_ANDROID_ZYGOTE_H_
