// PerfSampler: the Section 4.1.1 methodology tool, simulated — rate-based
// PC sampling over the cycle-level pipeline, with samples classified into
// the paper's code categories via the address-space layout (the role
// /proc/pid/smaps plays for the real traces).
//
// This closes the methodology loop: the workload generator *specifies* a
// fetch distribution (Figure 3's shares); the sampler *observes* what the
// simulated core actually executed, and the two can be compared.

#ifndef SRC_ANDROID_PROFILER_H_
#define SRC_ANDROID_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/android/zygote.h"

namespace sat {

struct SampleBreakdown {
  uint64_t total = 0;
  uint64_t kernel = 0;
  // User samples by category, indexed by CodeCategory.
  uint64_t user[5] = {};
  // User samples that hit no known mapping (stack, heap, JIT — counted as
  // private code in the paper's buckets).
  uint64_t unmapped = 0;

  double KernelFraction() const {
    return total == 0 ? 0 : static_cast<double>(kernel) / static_cast<double>(total);
  }
  double UserShare(CodeCategory category) const {
    const uint64_t user_total = total - kernel;
    return user_total == 0
               ? 0
               : static_cast<double>(user[static_cast<int>(category)]) /
                     static_cast<double>(user_total);
  }
  double SharedCodeShare() const {
    const uint64_t user_total = total - kernel;
    if (user_total == 0) {
      return 0;
    }
    return 1.0 - static_cast<double>(
                     user[static_cast<int>(CodeCategory::kPrivateCode)] +
                     unmapped) /
                     static_cast<double>(user_total);
  }

  std::string ToString() const;
};

class PerfSampler {
 public:
  // Attaches to `core` of `system`'s kernel, sampling every `interval`
  // cycles (the paper uses 100 Hz for the user/kernel split and 10 kHz
  // for footprint coverage; at 1.2 GHz those are 12 M and 120 k cycles).
  PerfSampler(ZygoteSystem* system, uint32_t core_index, Cycles interval);
  ~PerfSampler();

  PerfSampler(const PerfSampler&) = delete;
  PerfSampler& operator=(const PerfSampler&) = delete;

  void Reset() { samples_.clear(); }

  // Classifies the collected samples against `task`'s address space.
  SampleBreakdown Analyze(Task& task) const;

  size_t sample_count() const { return samples_.size(); }

 private:
  struct Sample {
    VirtAddr va;
    bool kernel;
  };

  ZygoteSystem* system_;
  uint32_t core_index_;
  std::vector<Sample> samples_;
};

}  // namespace sat

#endif  // SRC_ANDROID_PROFILER_H_
