#include "src/driver/worker_pool.h"

#include <algorithm>
#include <utility>

namespace sat {

uint32_t HardwareJobs() {
  const uint32_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

uint64_t DeriveJobSeed(uint64_t base_seed, std::string_view job_name) {
  // FNV-1a over the name, seeded by folding in the base seed first, so
  // different --seed values give fully decorrelated per-job streams.
  uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](uint64_t byte) {
    hash ^= byte;
    hash *= 1099511628211ull;
  };
  for (int shift = 0; shift < 64; shift += 8) {
    mix((base_seed >> shift) & 0xff);
  }
  for (const char c : job_name) {
    mix(static_cast<unsigned char>(c));
  }
  // Seed 0 is legal but some generators treat it specially; avoid it.
  return hash == 0 ? 1 : hash;
}

uint64_t DeriveJobSeed(uint64_t base_seed, std::string_view scope,
                       std::string_view job_name) {
  uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](uint64_t byte) {
    hash ^= byte;
    hash *= 1099511628211ull;
  };
  const auto mix_u64 = [&mix](uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      mix((value >> shift) & 0xff);
    }
  };
  // Each string component is preceded by its length, so component
  // boundaries are unambiguous: ("ab","c") and ("a","bc") hash the byte
  // streams 2,a,b,1,c and 1,a,2,b,c — different, as required.
  mix_u64(base_seed);
  mix_u64(scope.size());
  for (const char c : scope) {
    mix(static_cast<unsigned char>(c));
  }
  mix_u64(job_name.size());
  for (const char c : job_name) {
    mix(static_cast<unsigned char>(c));
  }
  return hash == 0 ? 1 : hash;
}

WorkerPool::WorkerPool(uint32_t jobs) {
  const uint32_t count = std::max(1u, jobs);
  workers_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    in_flight_++;
  }
  work_available_.notify_one();
}

void WorkerPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_--;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

JobWatchdog::JobWatchdog(double timeout_s,
                         std::function<void(size_t)> on_timeout)
    : timeout_s_(timeout_s), on_timeout_(std::move(on_timeout)) {
  if (enabled()) {
    watcher_ = std::thread([this] { WatchLoop(); });
  }
}

JobWatchdog::~JobWatchdog() {
  if (!watcher_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  watcher_.join();
}

void JobWatchdog::JobStarted(size_t token) {
  if (!enabled()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_[token] = InFlight{std::chrono::steady_clock::now(), false};
  }
  wake_.notify_all();
}

void JobWatchdog::JobFinished(size_t token) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  active_.erase(token);
}

void JobWatchdog::WatchLoop() {
  // Poll at a fraction of the deadline so detection lag stays small
  // relative to the timeout itself.
  const auto poll = std::chrono::duration<double>(
      std::min(timeout_s_ / 4.0, 0.05) + 1e-4);
  const auto deadline = std::chrono::duration<double>(timeout_s_);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutting_down_) {
    wake_.wait_for(lock, poll);
    const auto now = std::chrono::steady_clock::now();
    std::vector<size_t> expired;
    for (auto& [token, job] : active_) {
      if (!job.fired && now - job.start >= deadline) {
        job.fired = true;
        expired.push_back(token);
      }
    }
    if (expired.empty()) {
      continue;
    }
    // The callback may take arbitrary locks; never hold ours across it.
    lock.unlock();
    for (const size_t token : expired) {
      on_timeout_(token);
    }
    lock.lock();
  }
}

void RunJobs(std::vector<std::function<void()>> work, uint32_t jobs) {
  if (jobs <= 1 || work.size() <= 1) {
    for (std::function<void()>& task : work) {
      task();
    }
    return;
  }
  WorkerPool pool(std::min<uint32_t>(jobs,
                                     static_cast<uint32_t>(work.size())));
  for (std::function<void()>& task : work) {
    pool.Submit(std::move(task));
  }
  pool.Wait();
}

}  // namespace sat
