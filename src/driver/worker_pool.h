// The experiment driver's worker pool: a fixed-size pool of host threads
// running independent simulation jobs concurrently.
//
// Each job is fully self-contained (one simulated System per job, no
// shared mutable state), so parallelism is free of simulation-level
// races by construction: a job writes only its own result slot, and the
// caller reads the slots back in submission order. The output of a
// parallel run is therefore bit-identical to a serial run of the same
// job list — the determinism contract of DESIGN.md section 5f.

#ifndef SRC_DRIVER_WORKER_POOL_H_
#define SRC_DRIVER_WORKER_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace sat {

// The default worker count: the host's hardware concurrency (at least 1).
uint32_t HardwareJobs();

// Deterministic per-job seed: folds `job_name` into `base_seed` with
// FNV-1a, so every named configuration gets a distinct, reproducible
// seed that does not depend on submission order, worker count, or
// scheduling. Used by the bench harness when an explicit --seed is given.
uint64_t DeriveJobSeed(uint64_t base_seed, std::string_view job_name);

// Scoped variant: folds a scope (the bench or scenario name) and the job
// name as two *length-delimited* components, so ("ab", "c") and
// ("a", "bc") derive different seeds — plain concatenation would collide
// for every pair of jobs whose scope+name strings merely concatenate
// equal. The bench harness passes its bench name as the scope, so two
// benches sharing a config-key job list still get decorrelated streams.
uint64_t DeriveJobSeed(uint64_t base_seed, std::string_view scope,
                       std::string_view job_name);

// A fixed-size pool. Submit() enqueues a task; Wait() blocks until every
// submitted task has finished. With `jobs` == 1 the pool still runs its
// single worker thread — callers wanting strictly in-process execution
// (e.g. under a debugger) use RunJobs below, which inlines that case.
class WorkerPool {
 public:
  explicit WorkerPool(uint32_t jobs);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void Submit(std::function<void()> task);
  void Wait();

  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  uint32_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

// Runs every element of `work` on a pool of `jobs` workers and returns
// when all are done. Jobs must be independent: each writes only its own
// output slot. With `jobs` <= 1 the work runs inline on the calling
// thread, in order — the serial baseline the parallel runs must match.
void RunJobs(std::vector<std::function<void()>> work, uint32_t jobs);

// Per-job deadline watchdog. Job wrappers report start/finish; a watcher
// thread polls the in-flight set and invokes `on_timeout(token)` exactly
// once per started job whose deadline passes. The callback runs on the
// watcher thread and must be thread-safe (typical use: set an atomic flag
// the job wrapper inspects when — if ever — it finishes). A hung job
// cannot be killed portably, so the watchdog's contract is detection and
// reporting, not preemption. With `timeout_s` <= 0 every call is a no-op
// and no thread is started. The destructor always joins the watcher.
class JobWatchdog {
 public:
  JobWatchdog(double timeout_s, std::function<void(size_t)> on_timeout);
  ~JobWatchdog();

  JobWatchdog(const JobWatchdog&) = delete;
  JobWatchdog& operator=(const JobWatchdog&) = delete;

  bool enabled() const { return timeout_s_ > 0; }

  // Starts (or restarts, for a retry) the clock for `token`.
  void JobStarted(size_t token);
  void JobFinished(size_t token);

 private:
  struct InFlight {
    std::chrono::steady_clock::time_point start;
    bool fired = false;
  };

  void WatchLoop();

  const double timeout_s_;
  const std::function<void(size_t)> on_timeout_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool shutting_down_ = false;
  std::map<size_t, InFlight> active_;
  std::thread watcher_;
};

}  // namespace sat

#endif  // SRC_DRIVER_WORKER_POOL_H_
