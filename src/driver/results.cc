#include "src/driver/results.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace sat {

namespace {

// JSON has no NaN/Inf; integral values print without an exponent so
// counter fields stay grep-able and diff-able.
std::string NumberToJson(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendRecord(const JobRecord& record, std::string* out) {
  *out += "    {\n";
  *out += "      \"config\": \"" + JsonEscape(record.config) + "\",\n";
  *out += "      \"host_ms\": " + NumberToJson(record.host_ms);
  if (!record.labels.empty()) {
    *out += ",\n      \"labels\": {\n";
    for (size_t i = 0; i < record.labels.size(); ++i) {
      *out += "        \"" + JsonEscape(record.labels[i].first) + "\": \"" +
              JsonEscape(record.labels[i].second) + "\"";
      *out += (i + 1 < record.labels.size()) ? ",\n" : "\n";
    }
    *out += "      }";
  }
  if (!record.metrics.empty()) {
    *out += ",\n      \"metrics\": {\n";
    for (size_t i = 0; i < record.metrics.size(); ++i) {
      *out += "        \"" + JsonEscape(record.metrics[i].first) +
              "\": " + NumberToJson(record.metrics[i].second);
      *out += (i + 1 < record.metrics.size()) ? ",\n" : "\n";
    }
    *out += "      }";
  }
  *out += "\n    }";
}

// --- the structural validator -------------------------------------------

struct Scanner {
  std::string_view text;
  size_t pos = 0;
  std::string* error;

  bool Fail(const std::string& message) {
    if (error != nullptr && error->empty()) {
      *error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }
  void SkipSpace() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      pos++;
    }
  }
  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }
  char Peek() { return pos < text.size() ? text[pos] : '\0'; }

  bool ParseValue(int depth);
  bool ParseString();
  bool ParseNumber();
  bool ParseLiteral(std::string_view literal);
};

bool Scanner::ParseString() {
  if (Peek() != '"') {
    return Fail("expected string");
  }
  pos++;
  while (pos < text.size()) {
    const char c = text[pos];
    if (c == '"') {
      pos++;
      return true;
    }
    if (c == '\\') {
      pos++;
      if (pos >= text.size()) {
        break;
      }
      const char esc = text[pos];
      if (esc == 'u') {
        for (int i = 1; i <= 4; ++i) {
          if (pos + static_cast<size_t>(i) >= text.size() ||
              !std::isxdigit(static_cast<unsigned char>(
                  text[pos + static_cast<size_t>(i)]))) {
            return Fail("bad \\u escape");
          }
        }
        pos += 4;
      } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                 esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
        return Fail("bad escape");
      }
      pos++;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      return Fail("unescaped control character in string");
    } else {
      pos++;
    }
  }
  return Fail("unterminated string");
}

bool Scanner::ParseNumber() {
  const size_t start = pos;
  if (Peek() == '-') {
    pos++;
  }
  if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
    return Fail("expected digit");
  }
  while (std::isdigit(static_cast<unsigned char>(Peek()))) {
    pos++;
  }
  if (Peek() == '.') {
    pos++;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("expected fraction digit");
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      pos++;
    }
  }
  if (Peek() == 'e' || Peek() == 'E') {
    pos++;
    if (Peek() == '+' || Peek() == '-') {
      pos++;
    }
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("expected exponent digit");
    }
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      pos++;
    }
  }
  return pos > start;
}

bool Scanner::ParseLiteral(std::string_view literal) {
  if (text.substr(pos, literal.size()) != literal) {
    return Fail("bad literal");
  }
  pos += literal.size();
  return true;
}

bool Scanner::ParseValue(int depth) {
  if (depth > 64) {
    return Fail("nesting too deep");
  }
  SkipSpace();
  switch (Peek()) {
    case '{': {
      pos++;
      SkipSpace();
      if (Peek() == '}') {
        pos++;
        return true;
      }
      while (true) {
        SkipSpace();
        if (!ParseString()) {
          return false;
        }
        SkipSpace();
        if (Peek() != ':') {
          return Fail("expected ':'");
        }
        pos++;
        if (!ParseValue(depth + 1)) {
          return false;
        }
        SkipSpace();
        if (Peek() == ',') {
          pos++;
          continue;
        }
        if (Peek() == '}') {
          pos++;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    case '[': {
      pos++;
      SkipSpace();
      if (Peek() == ']') {
        pos++;
        return true;
      }
      while (true) {
        if (!ParseValue(depth + 1)) {
          return false;
        }
        SkipSpace();
        if (Peek() == ',') {
          pos++;
          continue;
        }
        if (Peek() == ']') {
          pos++;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    case '"':
      return ParseString();
    case 't':
      return ParseLiteral("true");
    case 'f':
      return ParseLiteral("false");
    case 'n':
      return ParseLiteral("null");
    default:
      return ParseNumber();
  }
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJson(const ExperimentResult& result) {
  std::string out = "{\n";
  out += "  \"bench\": \"" + JsonEscape(result.bench) + "\",\n";
  out += "  \"jobs\": " + std::to_string(result.jobs) + ",\n";
  out += "  \"seed\": " + std::to_string(result.seed) + ",\n";
  out += std::string("  \"smoke\": ") + (result.smoke ? "true" : "false") +
         ",\n";
  out += "  \"host_ms\": " + NumberToJson(result.host_ms) + ",\n";
  out += "  \"configs\": [\n";
  for (size_t i = 0; i < result.records.size(); ++i) {
    AppendRecord(result.records[i], &out);
    out += (i + 1 < result.records.size()) ? ",\n" : "\n";
  }
  if (result.records.empty()) {
    // "[\n  ]" is still valid; nothing to do.
  }
  out += "  ]\n}\n";
  return out;
}

bool WriteJsonFile(const ExperimentResult& result, const std::string& path,
                   std::string* error) {
  const std::string json = ToJson(result);
  std::string syntax_error;
  if (!ValidateJsonSyntax(json, &syntax_error)) {
    if (error != nullptr) {
      *error = "internal writer bug: " + syntax_error;
    }
    return false;
  }
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  file << json;
  file.close();
  if (!file) {
    if (error != nullptr) {
      *error = "write failed: " + path;
    }
    return false;
  }
  return true;
}

bool ValidateJsonSyntax(std::string_view json, std::string* error) {
  Scanner scanner{json, 0, error};
  if (scanner.AtEnd()) {
    return scanner.Fail("empty document");
  }
  if (!scanner.ParseValue(0)) {
    return false;
  }
  if (!scanner.AtEnd()) {
    return scanner.Fail("trailing garbage");
  }
  return true;
}

}  // namespace sat
