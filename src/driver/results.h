// The driver's structured results sink: every experiment produces one
// machine-readable BENCH_<bench>.json holding, per configuration, the
// simulated counters and cycle totals plus the host wall-clock — the
// data the benchmark trajectory and regression tooling consume.
//
// The writer is self-contained (no JSON library): records hold ordered
// name/value lists, ToJson() renders them, and ValidateJsonSyntax() is a
// small structural checker that CI runs over every emitted file.

#ifndef SRC_DRIVER_RESULTS_H_
#define SRC_DRIVER_RESULTS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sat {

// One job's results: the configuration it ran, its host wall-clock, and
// two ordered key/value lists — numeric metrics (simulated counters,
// cycle totals, derived figures) and string labels (display name,
// workload, notes). Order is preserved into the JSON output so files
// diff cleanly between runs.
struct JobRecord {
  std::string config;  // registry key or unique job name
  double host_ms = 0.0;
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, std::string>> labels;

  void Metric(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
  void Label(std::string name, std::string value) {
    labels.emplace_back(std::move(name), std::move(value));
  }
};

// A whole experiment: the bench name, how it ran, and the per-job
// records in submission order (identical for serial and parallel runs).
struct ExperimentResult {
  std::string bench;   // e.g. "table1" -> BENCH_table1.json
  uint32_t jobs = 1;   // worker count the run used
  uint64_t seed = 0;   // base seed (0 = per-config defaults)
  bool smoke = false;  // reduced CI footprints
  double host_ms = 0.0;
  std::vector<JobRecord> records;
};

// "a\"b" -> "a\\\"b" (quotes, backslashes, control characters).
std::string JsonEscape(std::string_view text);

// Renders the result as pretty-printed JSON (stable field order).
std::string ToJson(const ExperimentResult& result);

// Writes ToJson(result) to `path`. False (with `error` set) on I/O
// failure or if the rendered JSON fails ValidateJsonSyntax — a writer
// bug must fail loudly, not poison the trajectory.
bool WriteJsonFile(const ExperimentResult& result, const std::string& path,
                   std::string* error);

// Structural JSON check: balanced containers, quoted keys, legal
// scalars, no trailing garbage. Not a full parser — a gate for CI and
// the writer's own output.
bool ValidateJsonSyntax(std::string_view json, std::string* error);

}  // namespace sat

#endif  // SRC_DRIVER_RESULTS_H_
