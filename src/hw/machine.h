// Machine: a multi-core extension of the core model — N Cortex-A9-like
// cores with private L1 caches and TLBs sharing one L2, plus TLB
// shootdowns (IPI-based cross-core invalidation) and a simple NUMA
// topology (cores partitioned into nodes; remote-node IPIs cost extra).
//
// The paper's evaluation pins its workloads to one core; on a real
// multi-core device every PTE downgrade — fork's COW pass, an unshare, an
// mprotect — must invalidate stale entries on *every* core the address
// space has run on (Linux's mm_cpumask). The shootdown machinery here
// makes that cost measurable: each remote core in the target mask costs
// an IPI round trip and performs the requested flush locally.
//
// Two shootdown policies:
//
//   * kImmediate — every Shootdown* call flushes all masked cores and
//     delivers the IPIs on the spot (one IPI per remote core per call).
//   * kBatched — the initiator's own TLB is flushed immediately (the
//     mutating CPU must observe its own PTE update), but remote flushes
//     are enqueued on a per-initiator pending queue. A later
//     DrainPendingFlushes — the kernel calls it at its sync points:
//     context switch, syscall return, fault-handler exit, daemon tick —
//     applies the whole queue and pays ONE IPI per distinct remote core,
//     however many flush entries targeted it. Until the drain, a remote
//     TLB may hold entries that are stale *only* while a covering entry
//     sits in the queue (the auditor knows this window).

#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hw/core.h"

namespace sat {

class Tracer;

// A set of cores, as a bitmask (the mm_cpumask analogue). 64-bit: the
// scale-out experiments run up to 64 cores, and `1u << core` arithmetic
// is undefined at core 32.
using CpuMask = uint64_t;

constexpr CpuMask CpuBit(uint32_t core) { return CpuMask{1} << core; }

// The mask selecting every core of an `n`-core machine.
constexpr CpuMask AllCoresMask(uint32_t n) {
  return n >= 64 ? ~CpuMask{0} : CpuBit(n) - 1;
}

// How TLB shootdowns are delivered (see the file comment).
enum class ShootdownPolicy : uint8_t {
  kImmediate = 0,
  kBatched,
};

constexpr const char* ShootdownPolicyName(ShootdownPolicy policy) {
  return policy == ShootdownPolicy::kBatched ? "batched" : "immediate";
}

// One deferred remote flush awaiting a drain. `mask` holds only remote
// cores (the initiator was flushed synchronously when it enqueued).
struct PendingFlush {
  enum class Kind : uint8_t { kAsid = 0, kVa, kAll };
  Kind kind = Kind::kAll;
  Asid asid = 0;
  VirtAddr va = 0;
  CpuMask mask = 0;
};

struct ShootdownStats {
  uint64_t shootdowns = 0;       // shootdown operations issued
  uint64_t ipis = 0;             // remote cores interrupted
  uint64_t batched_entries = 0;  // remote flushes enqueued instead of sent
  uint64_t batch_drains = 0;     // non-empty queue drains
  uint64_t batch_overflows = 0;  // queue collapses to a full flush
};

class Machine {
 public:
  Machine(const CostModel* costs, KernelCounters* kernel_counters,
          PhysAddr kernel_text_base, const CoreConfig& config,
          uint32_t num_cores, uint32_t num_nodes = 1,
          ShootdownPolicy shootdown_policy = ShootdownPolicy::kImmediate);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  uint32_t num_cores() const { return static_cast<uint32_t>(cores_.size()); }
  Core& core(uint32_t index) { return *cores_[index]; }
  Cache& l2() { return l2_; }

  // NUMA topology: cores are split into `num_nodes` equal contiguous
  // blocks (cores [0, per_node) are node 0, and so on).
  uint32_t num_nodes() const { return num_nodes_; }
  uint32_t NodeOfCore(uint32_t core) const {
    return core / (num_cores() / num_nodes_);
  }

  ShootdownPolicy shootdown_policy() const { return policy_; }

  // -------------------------------------------------------------------
  // TLB shootdowns. `mask` selects the cores whose TLBs may hold stale
  // entries (the address space's cpumask); `initiator` flushes locally
  // for free. Under kImmediate every other masked core costs an IPI
  // charged to the initiator (it spins for the acknowledgements, as
  // Linux does); under kBatched the remote flushes are queued until
  // DrainPendingFlushes.
  // -------------------------------------------------------------------

  void ShootdownAsid(Asid asid, CpuMask mask, uint32_t initiator);
  void ShootdownVa(VirtAddr va, CpuMask mask, uint32_t initiator);
  void ShootdownAll(CpuMask mask, uint32_t initiator);

  // Applies every flush pending on `initiator`'s queue to its targets and
  // delivers one batched IPI per distinct remote core. No-op when empty.
  void DrainPendingFlushes(uint32_t initiator);
  // Drains every core's queue (the kernel's sync points do not track who
  // enqueued what; draining all is always sound).
  void DrainAllPendingFlushes();

  bool HasPendingFlushes() const;
  // Flattened snapshot of every pending queue, for the auditor: a TLB
  // entry may be stale on core C only while a covering entry targeting C
  // sits here.
  std::vector<PendingFlush> PendingFlushesSnapshot() const;

  // Interrupts every core in `targets` (which must not include the
  // initiator: a CPU never IPIs itself) and charges the initiator the
  // round-trip wait, plus the remote-node surcharge for cross-node IPIs.
  void DeliverIpis(CpuMask targets, uint32_t initiator);

  const ShootdownStats& shootdown_stats() const { return stats_; }
  void ResetShootdownStats() { stats_ = ShootdownStats{}; }

  // Aggregated counters across all cores.
  CoreCounters TotalCounters() const;

  // Total execution cycles across all cores — the trace clock.
  Cycles TotalCycles() const;

  // Wires the tracer into the machine and every core (shootdown, IPI,
  // domain-fault, and TLB-flush events).
  void set_tracer(Tracer* tracer);

 private:
  template <typename FlushFn>
  void Broadcast(CpuMask mask, uint32_t initiator, FlushFn&& flush);

  void Enqueue(uint32_t initiator, PendingFlush flush);
  void ApplyFlush(const PendingFlush& flush, Core& core);

  const CostModel* costs_;
  KernelCounters* kernel_counters_;
  Cache l2_;
  std::vector<std::unique_ptr<Core>> cores_;
  uint32_t num_nodes_ = 1;
  ShootdownPolicy policy_ = ShootdownPolicy::kImmediate;
  // Per-initiator deferred-flush queues (kBatched only).
  std::vector<std::vector<PendingFlush>> pending_;
  ShootdownStats stats_;
  Tracer* tracer_ = nullptr;
};

}  // namespace sat

#endif  // SRC_HW_MACHINE_H_
