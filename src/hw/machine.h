// Machine: a multi-core extension of the core model — N Cortex-A9-like
// cores with private L1 caches and TLBs sharing one L2, plus TLB
// shootdowns (IPI-based cross-core invalidation).
//
// The paper's evaluation pins its workloads to one core; on a real
// multi-core device every PTE downgrade — fork's COW pass, an unshare, an
// mprotect — must invalidate stale entries on *every* core the address
// space has run on (Linux's mm_cpumask). The shootdown machinery here
// makes that cost measurable: each remote core in the target mask costs
// an IPI round trip and performs the requested flush locally.

#ifndef SRC_HW_MACHINE_H_
#define SRC_HW_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hw/core.h"

namespace sat {

class Tracer;

// A set of cores, as a bitmask (the mm_cpumask analogue).
using CpuMask = uint32_t;

struct ShootdownStats {
  uint64_t shootdowns = 0;   // broadcast operations issued
  uint64_t ipis = 0;         // remote cores interrupted
};

class Machine {
 public:
  Machine(const CostModel* costs, KernelCounters* kernel_counters,
          PhysAddr kernel_text_base, const CoreConfig& config,
          uint32_t num_cores);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  uint32_t num_cores() const { return static_cast<uint32_t>(cores_.size()); }
  Core& core(uint32_t index) { return *cores_[index]; }
  Cache& l2() { return l2_; }

  // -------------------------------------------------------------------
  // TLB shootdowns. `mask` selects the cores whose TLBs may hold stale
  // entries (the address space's cpumask); `initiator` flushes locally
  // for free, every other masked core costs an IPI charged to the
  // initiator (it spins for the acknowledgements, as Linux does).
  // -------------------------------------------------------------------

  void ShootdownAsid(Asid asid, CpuMask mask, uint32_t initiator);
  void ShootdownVa(VirtAddr va, CpuMask mask, uint32_t initiator);
  void ShootdownAll(CpuMask mask, uint32_t initiator);

  const ShootdownStats& shootdown_stats() const { return stats_; }
  void ResetShootdownStats() { stats_ = ShootdownStats{}; }

  // Aggregated counters across all cores.
  CoreCounters TotalCounters() const;

  // Total execution cycles across all cores — the trace clock.
  Cycles TotalCycles() const;

  // Wires the tracer into the machine and every core (shootdown, IPI,
  // domain-fault, and TLB-flush events).
  void set_tracer(Tracer* tracer);

 private:
  template <typename FlushFn>
  void Broadcast(CpuMask mask, uint32_t initiator, FlushFn&& flush);

  const CostModel* costs_;
  Cache l2_;
  std::vector<std::unique_ptr<Core>> cores_;
  ShootdownStats stats_;
  Tracer* tracer_ = nullptr;
};

}  // namespace sat

#endif  // SRC_HW_MACHINE_H_
