#include "src/hw/machine.h"

#include <cassert>

#include "src/trace/trace.h"

namespace sat {

Machine::Machine(const CostModel* costs, KernelCounters* kernel_counters,
                 PhysAddr kernel_text_base, const CoreConfig& config,
                 uint32_t num_cores)
    : costs_(costs), l2_(CacheHierarchy::MakeL2()) {
  assert(num_cores >= 1 && num_cores <= 32);
  for (uint32_t i = 0; i < num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(costs, &l2_, kernel_counters,
                                            kernel_text_base, config));
  }
}

template <typename FlushFn>
void Machine::Broadcast(CpuMask mask, uint32_t initiator, FlushFn&& flush) {
  stats_.shootdowns++;
  for (uint32_t i = 0; i < num_cores(); ++i) {
    if ((mask & (1u << i)) == 0) {
      continue;
    }
    flush(*cores_[i]);
    if (i != initiator) {
      // IPI round trip, charged to the initiating core, which waits for
      // the acknowledgement.
      stats_.ipis++;
      cores_[initiator]->counters().cycles += costs_->tlb_shootdown_ipi;
      Tracer::Emit(tracer_, TraceEventType::kTlbIpi, 0, i);
    }
  }
}

void Machine::ShootdownAsid(Asid asid, CpuMask mask, uint32_t initiator) {
  // The span covers the remote flushes, so its duration captures the IPI
  // cycles the initiator spends waiting.
  TraceSpan span(tracer_, TraceEventType::kTlbShootdown);
  span.set_args(asid, mask);
  Broadcast(mask, initiator, [asid](Core& core) { core.FlushTlbAsid(asid); });
}

void Machine::ShootdownVa(VirtAddr va, CpuMask mask, uint32_t initiator) {
  TraceSpan span(tracer_, TraceEventType::kTlbShootdown);
  span.set_args(VirtPageNumber(va), mask);
  Broadcast(mask, initiator, [va](Core& core) { core.FlushTlbVa(va); });
}

void Machine::ShootdownAll(CpuMask mask, uint32_t initiator) {
  TraceSpan span(tracer_, TraceEventType::kTlbShootdown);
  span.set_args(0, mask);
  Broadcast(mask, initiator, [](Core& core) { core.FlushTlbAll(); });
}

CoreCounters Machine::TotalCounters() const {
  CoreCounters total;
  for (const auto& core : cores_) {
    total += core->counters();
  }
  return total;
}

Cycles Machine::TotalCycles() const {
  Cycles total = 0;
  for (const auto& core : cores_) {
    total += core->counters().cycles;
  }
  return total;
}

void Machine::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  for (auto& core : cores_) {
    core->set_tracer(tracer);
  }
}

}  // namespace sat
