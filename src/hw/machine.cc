#include "src/hw/machine.h"

#include "src/arch/check.h"
#include "src/trace/trace.h"

namespace sat {

namespace {

// Pending-queue cap per initiator. A mutator that outruns its own sync
// points (a huge munmap, a full swap-out pass) collapses the queue into
// one flush-everything entry instead of growing without bound — exactly
// the kernel's full-flush heuristic for large ranges.
constexpr size_t kPendingFlushCap = 64;

}  // namespace

Machine::Machine(const CostModel* costs, KernelCounters* kernel_counters,
                 PhysAddr kernel_text_base, const CoreConfig& config,
                 uint32_t num_cores, uint32_t num_nodes,
                 ShootdownPolicy shootdown_policy)
    : costs_(costs),
      kernel_counters_(kernel_counters),
      l2_(CacheHierarchy::MakeL2()),
      num_nodes_(num_nodes),
      policy_(shootdown_policy) {
  // CpuMask is 64-bit: more cores than mask bits would overflow every
  // cpumask the kernel keeps.
  SAT_CHECK(num_cores >= 1 && num_cores <= 64 &&
            "core count exceeds the cpumask width");
  SAT_CHECK(num_nodes >= 1 && num_nodes <= num_cores &&
            num_cores % num_nodes == 0 &&
            "cores must split evenly across NUMA nodes");
  for (uint32_t i = 0; i < num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(costs, &l2_, kernel_counters,
                                            kernel_text_base, config));
  }
  pending_.resize(num_cores);
}

template <typename FlushFn>
void Machine::Broadcast(CpuMask mask, uint32_t initiator, FlushFn&& flush) {
  stats_.shootdowns++;
  CpuMask remote = 0;
  for (uint32_t i = 0; i < num_cores(); ++i) {
    if ((mask & CpuBit(i)) == 0) {
      continue;
    }
    flush(*cores_[i]);
    if (i != initiator) {
      remote |= CpuBit(i);
    }
  }
  DeliverIpis(remote, initiator);
}

void Machine::DeliverIpis(CpuMask targets, uint32_t initiator) {
  // A CPU never interrupts itself: local flushes are synchronous.
  SAT_CHECK((targets & CpuBit(initiator)) == 0 &&
            "self-IPI: the initiator belongs in no remote target mask");
  for (uint32_t i = 0; i < num_cores(); ++i) {
    if ((targets & CpuBit(i)) == 0) {
      continue;
    }
    // IPI round trip, charged to the initiating core, which waits for
    // the acknowledgement. Crossing the interconnect to another NUMA
    // node costs extra.
    stats_.ipis++;
    if (kernel_counters_ != nullptr) {
      kernel_counters_->tlb_shootdown_ipis++;
    }
    Cycles cost = costs_->tlb_shootdown_ipi;
    if (NodeOfCore(i) != NodeOfCore(initiator)) {
      cost += costs_->numa_remote_ipi;
    }
    cores_[initiator]->counters().cycles += cost;
    Tracer::Emit(tracer_, TraceEventType::kTlbIpi, 0, i);
  }
}

void Machine::Enqueue(uint32_t initiator, PendingFlush flush) {
  flush.mask &= AllCoresMask(num_cores()) & ~CpuBit(initiator);
  if (flush.mask == 0) {
    return;  // no remote core to reach — nothing deferred
  }
  stats_.batched_entries++;
  if (kernel_counters_ != nullptr) {
    kernel_counters_->tlb_batched_flushes++;
  }
  std::vector<PendingFlush>& queue = pending_[initiator];
  if (queue.size() >= kPendingFlushCap) {
    CpuMask all = flush.mask;
    for (const PendingFlush& p : queue) {
      all |= p.mask;
    }
    queue.clear();
    queue.push_back(PendingFlush{PendingFlush::Kind::kAll, 0, 0, all});
    stats_.batch_overflows++;
    return;
  }
  queue.push_back(flush);
}

void Machine::ApplyFlush(const PendingFlush& flush, Core& core) {
  switch (flush.kind) {
    case PendingFlush::Kind::kAsid:
      core.FlushTlbAsid(flush.asid);
      break;
    case PendingFlush::Kind::kVa:
      core.FlushTlbVa(flush.va);
      break;
    case PendingFlush::Kind::kAll:
      core.FlushTlbAll();
      break;
  }
}

void Machine::DrainPendingFlushes(uint32_t initiator) {
  std::vector<PendingFlush>& queue = pending_[initiator];
  if (queue.empty()) {
    return;
  }
  stats_.batch_drains++;
  if (kernel_counters_ != nullptr) {
    kernel_counters_->tlb_batch_drains++;
  }
  TraceSpan span(tracer_, TraceEventType::kTlbShootdown);
  CpuMask targets = 0;
  for (const PendingFlush& p : queue) {
    targets |= p.mask;
    for (uint32_t i = 0; i < num_cores(); ++i) {
      if (p.mask & CpuBit(i)) {
        ApplyFlush(p, *cores_[i]);
      }
    }
  }
  span.set_args(queue.size(), targets);
  queue.clear();
  // One batched IPI per distinct remote core, however many flush entries
  // targeted it — the whole point of deferring.
  DeliverIpis(targets, initiator);
}

void Machine::DrainAllPendingFlushes() {
  for (uint32_t i = 0; i < num_cores(); ++i) {
    DrainPendingFlushes(i);
  }
}

bool Machine::HasPendingFlushes() const {
  for (const std::vector<PendingFlush>& queue : pending_) {
    if (!queue.empty()) {
      return true;
    }
  }
  return false;
}

std::vector<PendingFlush> Machine::PendingFlushesSnapshot() const {
  std::vector<PendingFlush> all;
  for (const std::vector<PendingFlush>& queue : pending_) {
    all.insert(all.end(), queue.begin(), queue.end());
  }
  return all;
}

void Machine::ShootdownAsid(Asid asid, CpuMask mask, uint32_t initiator) {
  // The span covers the remote flushes, so its duration captures the IPI
  // cycles the initiator spends waiting.
  TraceSpan span(tracer_, TraceEventType::kTlbShootdown);
  span.set_args(asid, mask);
  if (policy_ == ShootdownPolicy::kBatched) {
    stats_.shootdowns++;
    if (mask & CpuBit(initiator)) {
      cores_[initiator]->FlushTlbAsid(asid);
    }
    Enqueue(initiator,
            PendingFlush{PendingFlush::Kind::kAsid, asid, 0, mask});
    return;
  }
  Broadcast(mask, initiator, [asid](Core& core) { core.FlushTlbAsid(asid); });
}

void Machine::ShootdownVa(VirtAddr va, CpuMask mask, uint32_t initiator) {
  TraceSpan span(tracer_, TraceEventType::kTlbShootdown);
  span.set_args(VirtPageNumber(va), mask);
  if (policy_ == ShootdownPolicy::kBatched) {
    stats_.shootdowns++;
    if (mask & CpuBit(initiator)) {
      cores_[initiator]->FlushTlbVa(va);
    }
    Enqueue(initiator, PendingFlush{PendingFlush::Kind::kVa, 0, va, mask});
    return;
  }
  Broadcast(mask, initiator, [va](Core& core) { core.FlushTlbVa(va); });
}

void Machine::ShootdownAll(CpuMask mask, uint32_t initiator) {
  TraceSpan span(tracer_, TraceEventType::kTlbShootdown);
  span.set_args(0, mask);
  if (policy_ == ShootdownPolicy::kBatched) {
    stats_.shootdowns++;
    if (mask & CpuBit(initiator)) {
      cores_[initiator]->FlushTlbAll();
    }
    Enqueue(initiator, PendingFlush{PendingFlush::Kind::kAll, 0, 0, mask});
    return;
  }
  Broadcast(mask, initiator, [](Core& core) { core.FlushTlbAll(); });
}

CoreCounters Machine::TotalCounters() const {
  CoreCounters total;
  for (const auto& core : cores_) {
    total += core->counters();
  }
  return total;
}

Cycles Machine::TotalCycles() const {
  Cycles total = 0;
  for (const auto& core : cores_) {
    total += core->counters().cycles;
  }
  return total;
}

void Machine::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  for (auto& core : cores_) {
    core->set_tracer(tracer);
  }
}

}  // namespace sat
