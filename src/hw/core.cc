#include "src/hw/core.h"

#include <cassert>

#include "src/trace/trace.h"

namespace sat {

namespace {

// Byte offsets of each kernel path's text window within the kernel image,
// spaced so the windows never overlap.
constexpr PhysAddr KernelPathWindowBase(KernelPath path) {
  return static_cast<PhysAddr>(path) * 256 * 1024;
}

// Size of each path's text window, in cache lines. A path's successive
// invocations rotate through its window: the fault path, for example, is
// not one 6 KB loop but a spread of handler, rmap, allocator and
// page-cache code whose union far exceeds the 32 KB L1I — which is why
// every page fault keeps pushing kernel lines through the instruction
// cache instead of running entirely warm (the Figures 7-8 coupling
// between fault counts and I-cache stalls).
constexpr uint32_t KernelPathWindowLines(KernelPath path) {
  switch (path) {
    case KernelPath::kFaultHandler:
      return 1536;  // 48 KB of fault-path text
    case KernelPath::kContextSwitch:
      return 512;
    case KernelPath::kBinder:
      return 1024;  // 32 KB of binder/IPC text
    case KernelPath::kScheduler:
      return 512;
    case KernelPath::kFork:
      return 2048;
    case KernelPath::kMmap:
      return 1024;
  }
  return 512;
}

constexpr uint32_t kKernelLineSize = 32;

}  // namespace

Core::Core(const CostModel* costs, Cache* l2, KernelCounters* kernel_counters,
           PhysAddr kernel_text_base, const CoreConfig& config)
    : costs_(costs),
      kernel_counters_(kernel_counters),
      config_(config),
      caches_(costs, l2),
      main_tlb_(config.main_tlb_entries, config.main_tlb_ways),
      micro_itlb_(config.micro_tlb_entries),
      micro_dtlb_(config.micro_tlb_entries),
      kernel_text_base_(kernel_text_base) {}

void Core::SwitchContext(const MmuContext& context) {
  counters_.context_switches++;
  counters_.cycles += costs_->context_switch;
  // Cortex-A9: micro TLBs are flushed on every context switch.
  micro_itlb_.FlushAll();
  micro_dtlb_.FlushAll();
  if (!config_.asids_enabled) {
    // No ASIDs: all non-global entries belong to the outgoing process.
    // Global entries — kernel mappings, and with the paper's mechanism the
    // zygote-preloaded shared code — survive.
    main_tlb_.FlushNonGlobal();
    kernel_counters_->tlb_full_flushes++;
  }
  if (config_.isolation == IsolationModel::kFlushOnSwitch &&
      !context.zygote_like) {
    // The domain-less fallback: shared global entries must not be visible
    // to a process outside the sharing group, so drop them all before it
    // runs (Section 3.2.3; the scheduler-grouping ablation exists to make
    // this rare).
    main_tlb_.FlushGlobal();
    kernel_counters_->tlb_full_flushes++;
  }
  context_ = context;
  RunKernelPath(KernelPath::kContextSwitch, 0, costs_->switch_kernel_lines);
}

void Core::SetSampler(Cycles interval, SampleHookFn fn) {
  sample_hook_ = std::move(fn);
  sample_interval_ = interval;
  next_sample_at_ = counters_.cycles + interval;
}

bool Core::FetchLine(VirtAddr va) {
  counters_.inst_fetch_lines++;
  counters_.user_inst_lines++;
  if (sample_hook_ && counters_.cycles >= next_sample_at_) {
    sample_hook_(va, /*kernel=*/false);
    next_sample_at_ = counters_.cycles + sample_interval_;
  }
  return AccessMemory(va, AccessType::kExecute, /*is_fetch=*/true);
}

bool Core::FetchBurst(VirtAddr va, uint32_t burst_len) {
  assert(burst_len > 0);
  if (!FetchLine(va)) {
    return false;
  }
  counters_.inst_fetch_lines += burst_len - 1;
  counters_.user_inst_lines += burst_len - 1;
  counters_.cycles += static_cast<Cycles>(burst_len - 1) * costs_->l1_hit;
  return true;
}

bool Core::Load(VirtAddr va) {
  counters_.data_accesses++;
  return AccessMemory(va, AccessType::kRead, /*is_fetch=*/false);
}

bool Core::Store(VirtAddr va) {
  counters_.data_accesses++;
  return AccessMemory(va, AccessType::kWrite, /*is_fetch=*/false);
}

FaultStatus Core::Walk(VirtAddr va, AccessType access, TlbEntry* entry) {
  PageTable* pt = context_.page_table;
  if (pt == nullptr || !IsUserAddress(va)) {
    return FaultStatus::kTranslation;
  }
  counters_.cycles += costs_->walk_overhead;

  const uint32_t slot = PtpSlotIndex(va);
  const L1Entry& l1 = pt->l1(slot);

  // 1 MB sections translate at the first level: no second-level PTE fetch
  // at all, and one TLB entry covers 256 pages — the reach win the eager
  // zygote-code mapping buys. Sections take precedence over any PTEs.
  if (const SectionDesc* section = pt->SectionAt(va)) {
    TlbEntry walked;
    walked.valid = true;
    walked.size_pages = kPtesPerSection;
    walked.vpn = VirtPageNumber(SectionAlignDown(va));
    walked.asid = context_.asid;
    walked.global = section->global;
    walked.domain = l1.domain;
    walked.perm = PtePerm::kReadOnly;
    walked.executable = section->executable;
    walked.frame = section->base;
    *entry = walked;
    return FaultStatus::kNone;
  }

  if (!l1.present()) {
    return FaultStatus::kTranslation;
  }

  const auto ref = pt->FindPte(va);
  assert(ref.has_value());
  // The walker's PTE fetch goes through the cache hierarchy — with shared
  // PTPs this line is physically shared by every sharer, and it can live
  // on a remote NUMA node (unless the resolver redirects it to a
  // node-local replica).
  const PhysAddr pte_pa =
      pte_addr_resolver_
          ? pte_addr_resolver_(*ref->ptp, ref->index, numa_node_)
          : ref->ptp->HwEntryPhysAddr(ref->index);
  const uint64_t l2_misses_before = counters_.l2_misses;
  const Cycles pte_fetch = caches_.AccessPtw(pte_pa, &counters_);
  counters_.cycles += pte_fetch;
  ChargeNumaIfRemote(pte_pa, l2_misses_before);

  const HwPte hw = ref->ptp->hw(ref->index);
  if (!hw.valid()) {
    return FaultStatus::kTranslation;
  }

  // The x86-style first-level write-protect ablation: a NEED_COPY slot
  // denies writes during the walk itself, before per-PTE permissions.
  if (l1.need_copy && access == AccessType::kWrite) {
    return FaultStatus::kPermission;
  }

  // Referenced-bit upkeep (Linux/ARM emulates this in software; folding it
  // into the walk keeps the referenced-only unshare ablation honest).
  LinuxPte sw = ref->ptp->sw(ref->index);
  if (!sw.young()) {
    sw.set_young(true);
    pt->UpdatePte(va, hw, sw, /*allow_shared=*/true);
  }

  TlbEntry walked;
  walked.valid = true;
  walked.size_pages = hw.large() ? kPtesPerLargePage : 1;
  walked.vpn = VirtPageNumber(va) & ~(walked.size_pages - 1);
  walked.asid = context_.asid;
  walked.global = hw.global();
  walked.domain = l1.domain;
  walked.perm = hw.perm();
  walked.executable = hw.executable();
  walked.frame = hw.frame();
  *entry = walked;
  return FaultStatus::kNone;
}

bool Core::AccessMemory(VirtAddr va, AccessType access, bool is_fetch) {
  MicroTlb& micro = is_fetch ? micro_itlb_ : micro_dtlb_;
  Cycles& tlb_stalls =
      is_fetch ? counters_.itlb_stall_cycles : counters_.dtlb_stall_cycles;

  for (int attempt = 0; attempt < 8; ++attempt) {
    TlbEntry entry;
    TlbResult result = micro.Lookup(va, context_.asid, access, context_.dacr, &entry);
    if (result == TlbResult::kMiss) {
      counters_.micro_tlb_misses++;
      result = main_tlb_.Lookup(va, context_.asid, access, context_.dacr, &entry);
      if (result == TlbResult::kHit) {
        counters_.cycles += costs_->main_tlb_hit;
        tlb_stalls += costs_->main_tlb_hit;
        micro.Insert(entry);
      } else if (result == TlbResult::kMiss) {
        if (is_fetch) {
          counters_.itlb_main_misses++;
        } else {
          counters_.dtlb_main_misses++;
        }
        const Cycles before = counters_.cycles;
        const FaultStatus walk_status = Walk(va, access, &entry);
        tlb_stalls += counters_.cycles - before;
        if (walk_status != FaultStatus::kNone) {
          MemoryAbort abort;
          abort.status = walk_status;
          abort.fault_address = va;
          abort.access = access;
          abort.is_prefetch_abort = is_fetch;
          if (!abort_handler_ || !abort_handler_(abort)) {
            return false;  // SIGSEGV
          }
          continue;  // retry after the kernel resolved the fault
        }
        main_tlb_.Insert(entry);
        micro.Insert(entry);
        result = TlbResult::kHit;
      }
    }

    if (result == TlbResult::kDomainFault &&
        config_.isolation == IsolationModel::kMpkDataOnly && is_fetch) {
      // Memory protection keys guard loads and stores only: the fetch is
      // *permitted* through the foreign global entry. Count the hazard —
      // this is the unsoundness that makes MPK alone insufficient for
      // shared instruction translations (Section 5.2).
      counters_.unsound_global_hits++;
      result = TlbResult::kHit;
    }

    switch (result) {
      case TlbResult::kHit: {
        const PhysAddr pa = FrameToPhys(entry.frame) +
                            (va - (static_cast<PhysAddr>(entry.vpn) << kPageShift));
        const uint64_t l2_misses_before = counters_.l2_misses;
        const Cycles latency = is_fetch ? caches_.AccessInst(pa, &counters_)
                                        : caches_.AccessData(pa, &counters_);
        counters_.cycles += latency;
        ChargeNumaIfRemote(pa, l2_misses_before);
        return true;
      }
      case TlbResult::kDomainFault: {
        // The paper's handler: FSR says domain fault; flush every TLB
        // entry matching FAR on this core, return, retry.
        kernel_counters_->domain_faults++;
        kernel_counters_->tlb_va_flushes++;
        {
          TraceSpan span(tracer_, TraceEventType::kDomainFault);
          span.set_args(VirtPageNumber(va), entry.domain);
          span.set_duration(costs_->domain_fault);
          counters_.cycles += costs_->domain_fault;
          micro_itlb_.FlushVa(va);
          micro_dtlb_.FlushVa(va);
          main_tlb_.FlushVa(va);
        }
        continue;
      }
      case TlbResult::kPermissionFault: {
        MemoryAbort abort;
        abort.status = FaultStatus::kPermission;
        abort.fault_address = va;
        abort.access = access;
        abort.is_prefetch_abort = is_fetch;
        if (!abort_handler_ || !abort_handler_(abort)) {
          return false;
        }
        // The kernel fixed the PTE but our TLBs may hold the stale
        // write-protected entry; a real kernel flushes it in the COW path.
        micro_itlb_.FlushVa(va);
        micro_dtlb_.FlushVa(va);
        main_tlb_.FlushVa(va);
        continue;
      }
      case TlbResult::kMiss:
        assert(false && "unreachable: miss was resolved above");
        return false;
    }
  }
  assert(false && "memory access livelocked; fault handler made no progress");
  return false;
}

void Core::RunKernelPath(KernelPath path, Cycles cycles, uint32_t text_lines) {
  counters_.cycles += cycles;
  const PhysAddr window = kernel_text_base_ + KernelPathWindowBase(path);
  const uint32_t window_lines = KernelPathWindowLines(path);
  uint32_t& cursor = kernel_path_cursor_[static_cast<size_t>(path)];
  for (uint32_t i = 0; i < text_lines; ++i) {
    counters_.inst_fetch_lines++;
    counters_.kernel_inst_lines++;
    if (sample_hook_ && counters_.cycles >= next_sample_at_) {
      sample_hook_(static_cast<VirtAddr>(kKernelSpaceStart +
                                         (cursor * kKernelLineSize)),
                   /*kernel=*/true);
      next_sample_at_ = counters_.cycles + sample_interval_;
    }
    // Kernel text is mapped with 1 MB global sections; its TLB pressure is
    // negligible and not modelled, its cache pressure very much is.
    counters_.cycles +=
        caches_.AccessInst(window + cursor * kKernelLineSize, &counters_);
    cursor = (cursor + 1) % window_lines;
  }
}

void Core::ChargeNumaIfRemote(PhysAddr pa, uint64_t l2_misses_before) {
  if (numa_frames_per_node_ == 0 ||
      counters_.l2_misses == l2_misses_before) {
    return;  // NUMA off, or the access never left the cache hierarchy
  }
  const uint64_t frame = pa >> kPageShift;
  if (frame / numa_frames_per_node_ != numa_node_) {
    counters_.numa_remote_accesses++;
    counters_.cycles += costs_->numa_remote_dram;
  }
}

void Core::FlushTlbAll() {
  kernel_counters_->tlb_full_flushes++;
  micro_itlb_.FlushAll();
  micro_dtlb_.FlushAll();
  main_tlb_.FlushAll();
}

void Core::FlushTlbNonGlobal() {
  kernel_counters_->tlb_full_flushes++;
  micro_itlb_.FlushAll();
  micro_dtlb_.FlushAll();
  main_tlb_.FlushNonGlobal();
}

void Core::FlushTlbAsid(Asid asid) {
  kernel_counters_->tlb_asid_flushes++;
  micro_itlb_.FlushAll();
  micro_dtlb_.FlushAll();
  main_tlb_.FlushAsid(asid);
}

void Core::FlushTlbVa(VirtAddr va) {
  kernel_counters_->tlb_va_flushes++;
  micro_itlb_.FlushVa(va);
  micro_dtlb_.FlushVa(va);
  main_tlb_.FlushVa(va);
}

}  // namespace sat
