// The simulated CPU core: the full memory-access pipeline of a
// Cortex-A9-like processor, plus the slice of kernel behaviour that is
// architecturally entangled with it (context-switch TLB maintenance,
// domain-fault servicing, kernel-text instruction fetches).
//
// Access pipeline for one user-mode reference:
//
//   micro TLB (I or D) ──miss──▶ main TLB ──miss──▶ hardware table walk
//        │hit                        │hit                  │
//        ▼                           ▼                     ▼
//   domain+perm check          domain+perm check     PTE fetch through
//        │                           │                L1D/L2 (ARMv7 walker
//        ▼                           ▼                allocates into both)
//   cache access               insert micro,               │
//                              cache access          valid ──▶ insert TLBs
//                                                    invalid ─▶ abort to
//                                                               the kernel
//
// Domain faults (a non-zygote process hitting a zygote-domain global
// entry) are serviced here the way the paper's handler does: identify the
// cause from the FSR, flush every TLB entry matching the faulting address,
// return to user — the retry then misses and walks the process's own
// table. Translation/permission aborts are delegated to the registered
// abort handler (the kernel's page-fault path).

#ifndef SRC_HW_CORE_H_
#define SRC_HW_CORE_H_

#include <array>
#include <cstdint>
#include <functional>

#include "src/arch/domain.h"
#include "src/arch/fault.h"
#include "src/arch/types.h"
#include "src/cache/cache.h"
#include "src/pt/page_table.h"
#include "src/stats/cost_model.h"
#include "src/stats/counters.h"
#include "src/tlb/tlb.h"

namespace sat {

// How shared (global) TLB entries are protected from processes outside
// the sharing group — the paper's Section 5.2/6 design-space argument.
enum class IsolationModel : uint8_t {
  // 32-bit ARM domains (the paper's mechanism): every access, data or
  // instruction, is checked against the DACR; mismatches raise precise
  // domain faults. Safe, and no flushing needed.
  kArmDomains = 0,
  // x86-style memory protection keys: pkeys guard *data* accesses only.
  // Instruction fetches bypass the check — a non-member process can
  // consume a stale global entry, which the core counts as an unsound
  // hit (this is exactly why the paper asks for privileged domain
  // control "for both data and instructions").
  kMpkDataOnly,
  // No hardware help: the kernel flushes all global entries whenever it
  // switches to a process outside the sharing group (Section 3.2.3's
  // portability fallback; pairs with scheduler grouping).
  kFlushOnSwitch,
};

constexpr const char* IsolationModelName(IsolationModel model) {
  switch (model) {
    case IsolationModel::kArmDomains:
      return "ARM domains";
    case IsolationModel::kMpkDataOnly:
      return "MPK (data-only)";
    case IsolationModel::kFlushOnSwitch:
      return "flush-on-switch";
  }
  return "?";
}

// What the MMU needs to know about the running process.
struct MmuContext {
  Asid asid = 0;
  DomainAccessControl dacr = DomainAccessControl::StockDefault();
  PageTable* page_table = nullptr;
  // Member of the TLB-sharing group (zygote-like)? Drives the
  // kFlushOnSwitch and kMpkDataOnly isolation models.
  bool zygote_like = false;
};

// Resolves a translation/permission abort (the kernel's fault entry).
// Returns false when the fault is unresolvable (simulated SIGSEGV).
using AbortHandlerFn = std::function<bool(const MemoryAbort&)>;

// Rate-based PC sampling (the perf-record analogue of Section 4.1.1):
// invoked with the fetched address every `interval` simulated cycles.
// `kernel` distinguishes kernel-text fetches from user fetches.
using SampleHookFn = std::function<void(VirtAddr va, bool kernel)>;

// Distinct kernel code paths touch distinct windows of kernel text; the
// I-cache pressure each exerts is part of what the experiments measure.
enum class KernelPath : uint8_t {
  kFaultHandler = 0,
  kContextSwitch = 1,
  kBinder = 2,
  kScheduler = 3,
  kFork = 4,
  kMmap = 5,
};

struct CoreConfig {
  // When false, the TLB has no usable ASIDs: every context switch must
  // flush all non-global entries (Figure 13's "Disabled ASID" bars).
  bool asids_enabled = true;
  // How shared TLB entries are protected from non-members.
  IsolationModel isolation = IsolationModel::kArmDomains;
  uint32_t main_tlb_entries = 128;
  uint32_t main_tlb_ways = 4;
  uint32_t micro_tlb_entries = 32;
};

class Core {
 public:
  // `l2` is the (shared) last-level cache; `kernel_text_base` is the
  // physical base of the kernel image (for kernel I-fetch modelling).
  Core(const CostModel* costs, Cache* l2, KernelCounters* kernel_counters,
       PhysAddr kernel_text_base, const CoreConfig& config);

  void set_abort_handler(AbortHandlerFn handler) {
    abort_handler_ = std::move(handler);
  }

  // Overrides where the hardware walker fetches second-level PTEs from.
  // The NUMA page-table engine uses this to point walks at this core's
  // node-local replica of the PTP; unset, walks fetch from the master.
  // The returned address changes only the PTE *fetch* (cache/NUMA cost);
  // PTE contents are still read from the master PTP.
  using PteAddrResolverFn =
      std::function<PhysAddr(const PageTablePage&, uint32_t index,
                             uint32_t node)>;
  void set_pte_addr_resolver(PteAddrResolverFn resolver) {
    pte_addr_resolver_ = std::move(resolver);
  }

  // ---------------------------------------------------------------------
  // Context management.
  // ---------------------------------------------------------------------

  // Installs a context without modelling a switch (boot / test setup).
  void SetContext(const MmuContext& context) { context_ = context; }

  // Full context switch: micro TLBs flushed (A9 behaviour), DACR loaded,
  // non-global main-TLB entries flushed when ASIDs are disabled, switch
  // cost and kernel-text footprint charged.
  void SwitchContext(const MmuContext& context);

  const MmuContext& context() const { return context_; }

  // ---------------------------------------------------------------------
  // User-mode accesses.
  // ---------------------------------------------------------------------

  // Fetches the instruction cache line containing `va`. Returns false if
  // the access ultimately SIGSEGVed (abort handler gave up).
  bool FetchLine(VirtAddr va);
  bool Load(VirtAddr va);
  bool Store(VirtAddr va);

  // Trace compression: one pipelined fetch of `va`'s line followed by
  // `burst_len - 1` same-line/straight-line fetches that hit by
  // construction (charged one cycle each). Workload traces model spatial
  // locality this way instead of enumerating every fetch.
  bool FetchBurst(VirtAddr va, uint32_t burst_len);

  // ---------------------------------------------------------------------
  // Kernel-mode work.
  // ---------------------------------------------------------------------

  // Charges `cycles` of kernel execution and streams the path's kernel
  // text window through the I-cache (this is how "more page faults" turns
  // into "more I-cache stalls" in Figures 7-8).
  void RunKernelPath(KernelPath path, Cycles cycles, uint32_t text_lines);

  // Installs (or clears, with an empty fn) the PC sampler.
  void SetSampler(Cycles interval, SampleHookFn fn);

  // TLB maintenance requested by the kernel.
  void FlushTlbAll();
  void FlushTlbNonGlobal();
  void FlushTlbAsid(Asid asid);
  void FlushTlbVa(VirtAddr va);

  // Places this core on a NUMA node: an L2-missing access whose frame
  // lives outside [node * frames_per_node, (node+1) * frames_per_node)
  // pays the remote-DRAM surcharge. `frames_per_node == 0` disables NUMA
  // accounting (the single-node default).
  void ConfigureNuma(uint32_t node, uint64_t frames_per_node) {
    numa_node_ = node;
    numa_frames_per_node_ = frames_per_node;
  }
  uint32_t numa_node() const { return numa_node_; }

  // ---------------------------------------------------------------------
  // Observation.
  // ---------------------------------------------------------------------

  CoreCounters& counters() { return counters_; }
  const CoreCounters& counters() const { return counters_; }

  MainTlb& main_tlb() { return main_tlb_; }
  MicroTlb& micro_itlb() { return micro_itlb_; }
  MicroTlb& micro_dtlb() { return micro_dtlb_; }
  CacheHierarchy& caches() { return caches_; }

  const CoreConfig& config() const { return config_; }

  // Wires the tracer into the core (domain-fault events) and its main TLB
  // (flush events).
  void set_tracer(Tracer* tracer) {
    tracer_ = tracer;
    main_tlb_.set_tracer(tracer);
  }

 private:
  // One user access, with fault-retry. `is_fetch` selects the I side.
  bool AccessMemory(VirtAddr va, AccessType access, bool is_fetch);

  // Hardware table walk; returns the abort (kNone on success) and fills
  // *entry on success.
  FaultStatus Walk(VirtAddr va, AccessType access, TlbEntry* entry);

  // Charges the remote-DRAM surcharge when the access to `pa` missed the
  // L2 (detected by the miss-counter delta) and `pa` is off-node.
  void ChargeNumaIfRemote(PhysAddr pa, uint64_t l2_misses_before);

  const CostModel* costs_;
  KernelCounters* kernel_counters_;
  CoreConfig config_;
  CacheHierarchy caches_;
  MainTlb main_tlb_;
  MicroTlb micro_itlb_;
  MicroTlb micro_dtlb_;
  MmuContext context_;
  AbortHandlerFn abort_handler_;
  PteAddrResolverFn pte_addr_resolver_;
  SampleHookFn sample_hook_;
  Cycles sample_interval_ = 0;
  Cycles next_sample_at_ = 0;
  PhysAddr kernel_text_base_;
  // NUMA placement (see ConfigureNuma); 0 frames per node = NUMA off.
  uint32_t numa_node_ = 0;
  uint64_t numa_frames_per_node_ = 0;
  // Per-path rotation cursor through the kernel text windows.
  std::array<uint32_t, 6> kernel_path_cursor_{};
  CoreCounters counters_;
  Tracer* tracer_ = nullptr;
};

}  // namespace sat

#endif  // SRC_HW_CORE_H_
