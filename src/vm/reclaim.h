// Page-cache reclaim: evicts clean file-cache pages under memory
// pressure, unmapping each victim from every page table that maps it via
// the reverse map — the kswapd shrink path, reduced to what the paper's
// scalability argument needs.
//
// This is where page-table sharing pays off a third time (after fork cost
// and soft faults): a page mapped by N processes through a shared PTP has
// ONE rmap entry and costs ONE PTE clear to reclaim; under the stock
// kernel it has N of each. bench_reclaim measures both curves.

#ifndef SRC_VM_RECLAIM_H_
#define SRC_VM_RECLAIM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/mem/page_cache.h"
#include "src/mem/phys_memory.h"
#include "src/pt/ptp.h"
#include "src/pt/rmap.h"
#include "src/stats/counters.h"

namespace sat {

class FrameLru;
class Tracer;

struct ReclaimStats {
  uint32_t pages_reclaimed = 0;   // frames returned to the free list
  uint32_t pages_skipped = 0;     // dirty/unreclaimable candidates passed over
  uint32_t ptes_cleared = 0;      // rmap-driven unmap work performed
  uint32_t tlb_flushes = 0;       // per-VA invalidations requested
};

// Flush callback: invalidate stale TLB entries covering `va`. `ptp` is
// the page-table page whose PTE was just cleared — the kernel derives the
// shootdown cpumask from its sharer set — and `global` reports whether
// the cleared entry was a global (sharing-group) translation, which is
// cached beyond the mapping tasks' own cores.
using ReclaimFlushFn = std::function<void(VirtAddr, PtpId, bool)>;

class Reclaimer {
 public:
  // `lru` is optional: with one attached, ReclaimFileCache scans the
  // file-cache LRU list from its head, rotating unreclaimable candidates
  // to the tail (second chance) with a scan budget of one list length —
  // no O(physical frames) rescans per call. Without one (standalone test
  // construction), it falls back to a physical-order scan.
  Reclaimer(PhysicalMemory* phys, PageCache* page_cache, PtpAllocator* ptps,
            ReverseMap* rmap, KernelCounters* counters,
            FrameLru* lru = nullptr)
      : phys_(phys),
        page_cache_(page_cache),
        ptps_(ptps),
        rmap_(rmap),
        counters_(counters),
        lru_(lru) {}

  Reclaimer(const Reclaimer&) = delete;
  Reclaimer& operator=(const Reclaimer&) = delete;

  // Attempts to reclaim `target` clean file-cache pages (see the
  // constructor comment for scan order). Returns what happened.
  ReclaimStats ReclaimFileCache(uint32_t target, const ReclaimFlushFn& flush);

  // Unmaps and frees one specific file page if it is resident and clean.
  // Returns the PTEs cleared, or nullopt if it was not reclaimable.
  bool ReclaimPage(FileId file, uint32_t page_index,
                   const ReclaimFlushFn& flush, ReclaimStats* stats);

  // Reclaim passes and per-page evictions report trace events when set.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  // Unmaps `frame` from every PTE the rmap lists. Returns PTEs cleared.
  uint32_t UnmapAll(FrameNumber frame, const ReclaimFlushFn& flush,
                    ReclaimStats* stats);

  PhysicalMemory* phys_;
  PageCache* page_cache_;
  PtpAllocator* ptps_;
  ReverseMap* rmap_;
  KernelCounters* counters_;
  FrameLru* lru_ = nullptr;
  Tracer* tracer_ = nullptr;
};

}  // namespace sat

#endif  // SRC_VM_RECLAIM_H_
