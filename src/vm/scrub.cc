#include "src/vm/scrub.h"

#include <algorithm>
#include <utility>

#include "src/arch/check.h"
#include "src/pt/page_table.h"

namespace sat {

bool Scrubber::FrameLooksMapped(FrameNumber frame) const {
  if (frame >= phys_->total_frames()) {
    return false;
  }
  switch (phys_->frame(frame).kind) {
    case FrameKind::kAnon:
    case FrameKind::kFileCache:
    case FrameKind::kZero:
    case FrameKind::kKernel:
      return true;
    default:
      return false;
  }
}

bool Scrubber::RmapHasSite(FrameNumber frame, PtpId ptp, uint32_t index) const {
  bool found = false;
  rmap_->ForEach(frame, [&](const RmapEntry& entry) {
    if (entry.ptp == ptp && entry.index == index) {
      found = true;
    }
  });
  return found;
}

void Scrubber::RebuildFromFrame(PageTablePage& ptp, uint32_t index,
                                FrameNumber frame, VirtAddr va) {
  // Conservative attributes: read-only, non-global, but executable — the
  // simulated MMU allows reads and execution through this entry, and the
  // first write takes a permission fault that restores the precise
  // permissions from the VMA, exactly like a COW fault would.
  ptp.RepairHw(index, HwPte::MakePage(frame, PtePerm::kReadOnly,
                                      /*global=*/false, /*executable=*/true));
  counters_->scrub_repairs++;
  if (flush_site_) {
    flush_site_(ptp.id(), index, va);
  }
}

bool Scrubber::TryRepairRunReplica(PageTablePage& ptp, uint32_t index) {
  // A legitimately small (or empty) PTE can never sit inside a live run:
  // promotion and demotion rewrite all 16 words or none, so a clear
  // majority of identical large replicas among the 16-aligned neighbours
  // convicts any disagreeing word of rot.
  const uint32_t run_first = index & ~(kPtesPerLargePage - 1);
  HwPte exemplar;
  bool have_exemplar = false;
  uint32_t votes = 0;
  for (uint32_t i = run_first; i < run_first + kPtesPerLargePage; ++i) {
    if (i == index) {
      continue;
    }
    const HwPte sibling = ptp.hw(i);
    if (!sibling.valid() || !sibling.large() ||
        sibling.frame() % kPtesPerLargePage != 0) {
      continue;
    }
    if (!have_exemplar) {
      exemplar = sibling;
      have_exemplar = true;
      votes = 1;
    } else if (sibling == exemplar) {
      votes++;
    }
  }
  if (votes < kPtesPerLargePage / 2 || ptp.hw(index) == exemplar) {
    return false;
  }
  ptp.RecountPresentForScrub();
  ptp.RepairHw(index, exemplar);
  counters_->scrub_repairs++;
  if (flush_site_) {
    flush_site_(ptp.id(), index, 0);
  }
  return true;
}

bool Scrubber::TryRepairFromReplicaMajority(PageTablePage& ptp, uint32_t index,
                                            const ScrubContext& ctx) {
  // Last resort before declaring a site unrepairable: with NUMA page-table
  // replication active, the per-node replicas are one more redundant copy
  // of the hardware word. A strict majority across {master, replicas} that
  // disagrees with the master convicts the master word of rot.
  if (!ctx.replica_majority_of) {
    return false;
  }
  const std::optional<uint32_t> majority =
      ctx.replica_majority_of(ptp.id(), index);
  if (!majority.has_value() || *majority == ptp.hw(index).raw()) {
    return false;
  }
  ptp.RepairHw(index, HwPte::FromRaw(*majority));
  counters_->scrub_repairs++;
  if (flush_site_) {
    flush_site_(ptp.id(), index, 0);
  }
  return true;
}

void Scrubber::DropSite(PageTablePage& ptp, uint32_t index, FrameNumber frame,
                        VirtAddr va) {
  // Clean refetchable page: tear the mapping down entirely; the next touch
  // refaults it from the backing file. Recount first — Set's present-count
  // bookkeeping asserts on tables whose validity bits were flipped.
  ptp.RecountPresentForScrub();
  rmap_->Remove(frame, ptp.id(), index);
  ptp.Set(index, HwPte{}, LinuxPte{});
  phys_->UnrefFrame(frame);
  counters_->scrub_repairs++;
  if (flush_site_) {
    flush_site_(ptp.id(), index, va);
  }
}

ScrubSiteResult Scrubber::ScrubSite(PageTablePage& ptp, uint32_t index,
                                    const ScrubContext& ctx) {
  const HwPte hw = ptp.hw(index);
  const LinuxPte sw = ptp.sw(index);
  const PtpId id = ptp.id();

  if (!hw.valid()) {
    if (!sw.present()) {
      return ScrubSiteResult::kClean;  // empty or swap entry: consistent
    }
    // Validity rotted off a mapped entry. The shadow says present, so the
    // rmap (or, for a zero-page mapping, the zero frame) still knows what
    // was mapped here. A replica of a collapsed run is rebuilt from its
    // neighbours instead — the rmap rebuild below would install a small
    // PTE and leave the run torn.
    ptp.RecountPresentForScrub();
    if (TryRepairRunReplica(ptp, index)) {
      return ScrubSiteResult::kRepaired;
    }
    const auto truth = rmap_->FindAtSite(id, index);
    if (truth.has_value()) {
      RebuildFromFrame(ptp, index, truth->first, truth->second);
    } else if (!sw.dirty()) {
      RebuildFromFrame(ptp, index, phys_->zero_frame(), 0);
    } else if (TryRepairFromReplicaMajority(ptp, index, ctx)) {
      return ScrubSiteResult::kRepaired;
    } else {
      return ScrubSiteResult::kUnrepairable;  // dirty page, no copy left
    }
    return ScrubSiteResult::kRepaired;
  }

  if (!sw.present()) {
    // Spurious-valid: the type bits rotted *on* over an empty or swap
    // shadow entry. No reference was ever taken through this descriptor.
    if (rmap_->FindAtSite(id, index).has_value()) {
      // The rmap insists something is mapped here while the shadow says
      // not: two trusted copies disagree, so neither can repair the other
      // — unless the NUMA replicas hold a majority word to break the tie.
      if (TryRepairFromReplicaMajority(ptp, index, ctx)) {
        return ScrubSiteResult::kRepaired;
      }
      return ScrubSiteResult::kUnrepairable;
    }
    ptp.RecountPresentForScrub();
    ptp.RepairHw(index, HwPte{});
    counters_->scrub_repairs++;
    if (flush_site_) {
      flush_site_(id, index, 0);
    }
    return ScrubSiteResult::kRepaired;
  }

  // Valid and present: the mapped case. Run-replica voting first — a
  // torn run must be made whole again before the per-word checks below
  // "repair" the word into an even more torn small PTE.
  if (TryRepairRunReplica(ptp, index)) {
    return ScrubSiteResult::kRepaired;
  }
  const FrameNumber frame = MappedFrameOf(hw, index);
  bool frame_ok = FrameLooksMapped(frame);
  if (frame_ok && frame != phys_->zero_frame() &&
      phys_->frame(frame).kind != FrameKind::kKernel) {
    // Zero/kernel frames are deliberately absent from the rmap; everything
    // else must have an rmap entry naming exactly this site.
    frame_ok = RmapHasSite(frame, id, index);
  }
  if (!frame_ok) {
    ptp.RecountPresentForScrub();
    const auto truth = rmap_->FindAtSite(id, index);
    if (truth.has_value()) {
      const PageFrame& meta = phys_->frame(truth->first);
      if (meta.kind == FrameKind::kFileCache && !sw.dirty()) {
        DropSite(ptp, index, truth->first, truth->second);
      } else {
        RebuildFromFrame(ptp, index, truth->first, truth->second);
      }
      return ScrubSiteResult::kRepaired;
    }
    if (!sw.dirty()) {
      // Present, clean, and unknown to the rmap: only a zero-page mapping
      // has that shape (zero frames are kept out of the rmap, and a dirty
      // bit would mean a private copy existed). Re-point at the zero frame;
      // a later write COWs away from it as usual.
      RebuildFromFrame(ptp, index, phys_->zero_frame(), 0);
      return ScrubSiteResult::kRepaired;
    }
    if (TryRepairFromReplicaMajority(ptp, index, ctx)) {
      return ScrubSiteResult::kRepaired;
    }
    return ScrubSiteResult::kUnrepairable;  // dirty page, no copy left
  }

  // A large descriptor must name a 64 KB-aligned base. A small entry
  // whose large bit rotted on at a 16-aligned index passes the frame
  // check above (replica 0 maps the base itself), so validate the shape
  // separately and rebuild as a plain 4 KB entry.
  if (hw.large() && hw.frame() % kPtesPerLargePage != 0) {
    ptp.RecountPresentForScrub();
    RebuildFromFrame(ptp, index, frame, 0);
    return ScrubSiteResult::kRepaired;
  }

  // Frame bits are fine; check the attribute bits.
  HwPte fixed = hw;
  const uint8_t perm_raw = static_cast<uint8_t>(hw.perm());
  if (perm_raw == 0 || perm_raw == 3) {
    // kNone would permission-fault every access into a SIGSEGV; 3 is not
    // an encoding at all. Read-only is always recoverable.
    fixed.set_perm(PtePerm::kReadOnly);
  }
  if (fixed.perm() == PtePerm::kReadWrite) {
    const PageFrame& meta = phys_->frame(frame);
    const bool cow_only = frame == phys_->zero_frame() || meta.ksm_stable;
    const bool region_ro = !sw.writable();
    const bool shared_wp =
        !ctx.hw_l1_write_protect &&
        (ptps_->SharerCount(id) > 1 ||
         (ctx.need_copy_of && ctx.need_copy_of(id)));
    if (cow_only || region_ro || shared_wp) {
      fixed.set_perm(PtePerm::kReadOnly);
    }
  }
  if (fixed.global() &&
      (!ctx.share_tlb_global ||
       (ctx.domain_of && ctx.domain_of(id) != kDomainZygote))) {
    fixed.set_global(false);
  }
  if (fixed != hw) {
    ptp.RepairHw(index, fixed);
    counters_->scrub_repairs++;
    if (flush_site_) {
      flush_site_(id, index, 0);
    }
    return ScrubSiteResult::kRepaired;
  }
  return ScrubSiteResult::kClean;
}

ScrubPassResult Scrubber::RunPass(const ScrubContext& ctx,
                                  uint32_t ptp_budget) {
  ScrubPassResult result;

  // Snapshot the live PTP population; the cursor makes successive passes
  // cover all of it round-robin even when the budget is small.
  std::vector<PtpId> live;
  ptps_->ForEachLive(
      [&](const PageTablePage& ptp) { live.push_back(ptp.id()); });
  if (!live.empty()) {
    const uint64_t n =
        std::min<uint64_t>(ptp_budget, static_cast<uint64_t>(live.size()));
    for (uint64_t k = 0; k < n; ++k) {
      const PtpId id = live[(cursor_ + k) % live.size()];
      PageTablePage& ptp = ptps_->Get(id);
      result.ptps_walked++;
      for (uint32_t i = 0; i < kPtesPerPtp; ++i) {
        switch (ScrubSite(ptp, i, ctx)) {
          case ScrubSiteResult::kRepaired:
            result.repairs++;
            break;
          case ScrubSiteResult::kUnrepairable:
            result.unrepairable_sites.push_back({id, i});
            break;
          case ScrubSiteResult::kClean:
            break;
        }
      }
    }
    cursor_ = (cursor_ + n) % live.size();
  }

  // Orphan sweep: an anonymous frame whose references are not explained by
  // any rmap entry or swap-cache residency is unreachable — typically the
  // residue of a descriptor whose frame bits rotted before teardown could
  // release it. Pull it out of circulation so the leak cannot be re-issued
  // as someone else's page.
  for (FrameNumber fn = 0; fn < phys_->total_frames(); ++fn) {
    const PageFrame& meta = phys_->frame(fn);
    if (meta.kind != FrameKind::kAnon || meta.ksm_stable ||
        meta.ref_count == 0) {
      continue;
    }
    if (rmap_->MapCount(fn) != 0) {
      continue;
    }
    if (zram_ != nullptr && zram_->CacheSlotOf(fn).has_value()) {
      continue;
    }
    const uint32_t stale_refs = meta.ref_count;
    phys_->QuarantineFrame(fn);
    for (uint32_t r = 0; r < stale_refs; ++r) {
      phys_->UnrefFrame(fn);
    }
    counters_->scrub_repairs++;
    result.repairs++;
  }

  // zram sweep: every live slot's checksum, every pass (cheap — one hash
  // per slot).
  if (zram_ != nullptr && zram_->enabled()) {
    std::vector<SwapSlotId> bad_cached;
    std::vector<SwapSlotId> bad_lost;
    zram_->ForEachSlot([&](SwapSlotId slot, uint32_t /*refs*/,
                           uint32_t /*bytes*/, FrameNumber cached) {
      if (zram_->SlotChecksumOk(slot)) {
        return;
      }
      if (cached != ZramStore::kNoFrame) {
        bad_cached.push_back(slot);
      } else {
        bad_lost.push_back(slot);
      }
    });
    for (SwapSlotId slot : bad_cached) {
      // The decompressed copy still sits in the swap cache: re-duplicate
      // the compressed copy from it and restamp the checksum.
      const FrameNumber cached = zram_->CacheLookup(slot);
      zram_->RepairSlotContent(slot, phys_->frame(cached).content);
      counters_->scrub_repairs++;
      result.repairs++;
    }
    result.unrepairable_slots = std::move(bad_lost);
  }

  return result;
}

}  // namespace sat
