// Memory regions (the vm_area_struct analogue).

#ifndef SRC_VM_VM_AREA_H_
#define SRC_VM_VM_AREA_H_

#include <cstdint>
#include <string>

#include "src/arch/types.h"

namespace sat {

struct VmProt {
  bool read = false;
  bool write = false;
  bool execute = false;

  bool operator==(const VmProt&) const = default;

  static constexpr VmProt ReadOnly() { return {true, false, false}; }
  static constexpr VmProt ReadWrite() { return {true, true, false}; }
  static constexpr VmProt ReadExec() { return {true, false, true}; }
  static constexpr VmProt ReadWriteExec() { return {true, true, true}; }

  std::string ToString() const {
    std::string s;
    s += read ? 'r' : '-';
    s += write ? 'w' : '-';
    s += execute ? 'x' : '-';
    return s;
  }
};

enum class VmKind : uint8_t {
  kFilePrivate,  // MAP_PRIVATE file mapping (library code/data): COW
  kFileShared,   // MAP_SHARED file mapping (ashmem-style)
  kAnonPrivate,  // heap, stack, COW copies
  kAnonShared,   // shared anonymous memory
};

constexpr bool IsFileBacked(VmKind kind) {
  return kind == VmKind::kFilePrivate || kind == VmKind::kFileShared;
}

constexpr bool IsPrivate(VmKind kind) {
  return kind == VmKind::kFilePrivate || kind == VmKind::kAnonPrivate;
}

// A contiguous region of user virtual address space with uniform
// protection and backing. [start, end) are page aligned.
struct VmArea {
  VirtAddr start = 0;
  VirtAddr end = 0;
  VmProt prot;
  VmKind kind = VmKind::kAnonPrivate;
  FileId file = kNoFile;
  // File page index backing `start` (pages; not bytes).
  uint32_t file_page_offset = 0;

  // The paper's new vm_area_struct flag: set by mmap when the zygote maps
  // the code segment of a shared library, inherited across fork. Pages of
  // global regions get the global bit in their PTEs so their TLB entries
  // are shared by all zygote-descended processes (Section 3.2.2).
  bool global = false;

  // The stack is excluded from PTP sharing as a design choice (Section
  // 4.2.1): it is modified immediately after the child is scheduled.
  bool is_stack = false;

  // Map this region with 64 KB large pages where possible (the paper's
  // complement discussion, Section 2.3.3). Only meaningful for read-only/
  // executable file mappings; faults fall back to 4 KB pages at the
  // region's unaligned edges.
  bool use_large_pages = false;

  // Mapped by the zygote during preload (any segment, code or data). The
  // "Copied PTEs" comparison kernel keys off this together with
  // prot.execute to decide which PTEs to copy at fork.
  bool zygote_preloaded = false;

  // Set on regions copied into a child at fork (as opposed to regions the
  // process mapped itself afterwards). A fault on a *non*-inherited region
  // inside a shared PTP must unshare first — under the default eager
  // policy mmap already unshared, so this only matters for the
  // lazy-unshare ablation.
  bool inherited = false;

  // Registered with KSM via madvise(MADV_MERGEABLE) (or at mmap). Like
  // Linux's VM_MERGEABLE the flag rides along at fork — regions are copied
  // wholesale into the child — so zygote-advised heaps stay mergeable in
  // every app. Only anonymous private pages are ever merge candidates.
  bool mergeable = false;

  std::string name;

  uint32_t PageCount() const { return (end - start) / kPageSize; }

  bool Contains(VirtAddr va) const { return va >= start && va < end; }

  bool Overlaps(VirtAddr lo, VirtAddr hi) const { return start < hi && lo < end; }

  // File page index backing virtual address `va` (must be inside).
  uint32_t FilePageFor(VirtAddr va) const {
    return file_page_offset + ((va - start) >> kPageShift);
  }

  std::string ToString() const;
};

}  // namespace sat

#endif  // SRC_VM_VM_AREA_H_
