// Anonymous-memory swap-out: LRU page lists and the swap-out engine that
// compresses cold anonymous pages into the zram store (src/mem/zram.h).
//
// FrameLru keeps the reclaim candidate lists — active/inactive anonymous
// and a file-cache list — as intrusive doubly-linked lists over frame
// numbers, maintained automatically through PhysicalMemory's frame
// lifecycle observer hook: anonymous frames enter the inactive tail at
// allocation, file-cache frames enter the file-list tail, and a freed
// frame leaves whatever list it was on. Reclaim policy then never scans
// physical memory; it pops list heads.
//
// SwapManager implements second-chance aging and swap-out:
//
//   * a candidate whose PTEs carry the (software) referenced bit is not
//     evicted; the bits are harvested — cleared with a TLB invalidation
//     so the next touch sets them again — and the page moves to the
//     active list (lru_activations),
//   * unreclaimable candidates (large-page mappings) rotate to the
//     inactive tail (lru_rotations) instead of being rescanned,
//   * a clean page still associated with a swap slot via the swap cache
//     is dropped without recompressing (swap_clean_drops),
//   * otherwise the page is compressed into a fresh slot and every PTE
//     mapping it — one per shared PTP, serving all sharers — is replaced
//     by a swap entry holding one slot reference, with a per-VA TLB
//     shootdown.
//
// The swap PTE is written directly at the PTP level, like the reclaimer's
// unmap: this is legal in NEED_COPY shared PTPs precisely because one
// entry is every sharer's entry.

#ifndef SRC_VM_SWAP_H_
#define SRC_VM_SWAP_H_

#include <cstdint>
#include <vector>

#include "src/mem/phys_memory.h"
#include "src/mem/zram.h"
#include "src/pt/ptp.h"
#include "src/pt/rmap.h"
#include "src/stats/counters.h"
#include "src/vm/reclaim.h"

namespace sat {

class Tracer;

enum class LruList : uint8_t {
  kNone = 0,
  kAnonActive,
  kAnonInactive,
  kFile,
};

class FrameLru : public FrameLifecycleObserver {
 public:
  explicit FrameLru(uint64_t total_frames);

  FrameLru(const FrameLru&) = delete;
  FrameLru& operator=(const FrameLru&) = delete;

  void OnFrameAllocated(FrameNumber frame, FrameKind kind) override;
  void OnFrameFreed(FrameNumber frame, FrameKind kind) override;

  uint64_t size(LruList list) const { return sizes_[Index(list)]; }
  bool empty(LruList list) const { return size(list) == 0; }
  LruList ListOf(FrameNumber frame) const { return nodes_[frame].list; }

  // Removes and returns the head (least recently inserted). The list must
  // not be empty.
  FrameNumber PopHead(LruList list);
  // Appends `frame`, which must currently be on no list.
  void PushTail(LruList list, FrameNumber frame);
  // Takes `frame` off its list; no-op if it is on none.
  void Remove(FrameNumber frame);

 private:
  static constexpr FrameNumber kNil = static_cast<FrameNumber>(-1);
  static constexpr uint32_t kNumLists = 4;
  static uint32_t Index(LruList list) { return static_cast<uint32_t>(list); }

  struct Node {
    FrameNumber prev = kNil;
    FrameNumber next = kNil;
    LruList list = LruList::kNone;
  };

  std::vector<Node> nodes_;
  FrameNumber heads_[kNumLists];
  FrameNumber tails_[kNumLists];
  uint64_t sizes_[kNumLists] = {};
};

class SwapManager {
 public:
  SwapManager(PhysicalMemory* phys, ZramStore* zram, PtpAllocator* ptps,
              ReverseMap* rmap, FrameLru* lru, KernelCounters* counters)
      : phys_(phys),
        zram_(zram),
        ptps_(ptps),
        rmap_(rmap),
        lru_(lru),
        counters_(counters) {}

  SwapManager(const SwapManager&) = delete;
  SwapManager& operator=(const SwapManager&) = delete;

  // Swaps out up to `target` anonymous pages, scanning one inactive-list
  // budget's worth of candidates per page. Returns the number of pages
  // actually freed (compressed out or clean-dropped). Stops early when
  // the candidate pool is exhausted or the store cannot take more.
  uint32_t SwapOut(uint32_t target, const ReclaimFlushFn& flush);

  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  // One victim attempt. Returns true if a page was freed; false when the
  // scan budget ran out or the store rejected the page (the caller should
  // then stop rather than spin).
  bool SwapOutOne(const ReclaimFlushFn& flush);
  // Refills the inactive list from the active head until the two are
  // roughly balanced.
  void AgeActiveList();

  PhysicalMemory* phys_;
  ZramStore* zram_;
  PtpAllocator* ptps_;
  ReverseMap* rmap_;
  FrameLru* lru_;
  KernelCounters* counters_;
  Tracer* tracer_ = nullptr;
};

}  // namespace sat

#endif  // SRC_VM_SWAP_H_
