// The kernel invariant auditor: a from-scratch cross-check of every piece
// of redundant state the simulated kernel keeps — frame reference counts
// against the PTEs and page-cache residency that justify them, PTP sharer
// counts against the first-level entries naming each PTP, NEED_COPY
// against the write-protection it promises, TLB contents against the page
// tables they cache, and DACR/domain assignments against the zygote
// policy.
//
// The auditor never mutates anything and never aborts: corruption is what
// it exists to *report*, so every walk tolerates the inconsistent state it
// flags (e.g. PTPs are fetched with GetIfLive, which returns nullptr for a
// dangling id instead of asserting). It is deliberately slow — full
// recounts over all of physical memory and every live PTP — because it
// runs in tests (after every fuzz step, at integration-test teardown), not
// on any measured path.
//
// Use via Kernel::AuditInvariants(), which assembles the AuditInput from
// the live subsystems, or build an AuditInput by hand in page-table-only
// tests.

#ifndef SRC_VM_AUDIT_H_
#define SRC_VM_AUDIT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/arch/domain.h"
#include "src/arch/types.h"
#include "src/mem/page_cache.h"
#include "src/mem/phys_memory.h"
#include "src/pt/ptp.h"
#include "src/pt/rmap.h"
#include "src/tlb/tlb.h"
#include "src/vm/mm.h"

namespace sat {

class FrameLru;
class ZramStore;

// One broken invariant: which check tripped and what was found.
struct AuditViolation {
  std::string check;   // short stable name, e.g. "frame-refcount"
  std::string detail;  // expected-vs-found, with the offending ids
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  // Number of individual facts verified (so tests can assert the audit
  // actually covered something, not just vacuously passed).
  uint64_t checks = 0;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

// One audited address space: the mm plus the task-side state whose
// consistency with it is part of what is audited.
struct AuditSpace {
  const MmStruct* mm = nullptr;
  Pid pid = 0;
  Asid asid = 0;
  bool zygote_like = false;
  DomainAccessControl dacr;
};

// A snapshot of one valid TLB entry and where it was found.
struct AuditTlbEntry {
  TlbEntry entry;
  uint32_t core = 0;
  const char* which = "?";  // "main" / "micro-i" / "micro-d"
};

// A deferred TLB flush still sitting in a pending shootdown queue
// (mirrors hw::PendingFlush without depending on the machine layer). A
// TLB entry on a core in `cpu_mask` may disagree with the page tables as
// long as a covering entry sits here: the flush has been issued, just not
// yet delivered.
struct AuditPendingFlush {
  enum class Kind : uint8_t { kAsid = 0, kVa, kAll };
  Kind kind = Kind::kAll;
  Asid asid = 0;
  VirtAddr va = 0;
  uint64_t cpu_mask = 0;
};

// One per-node replica of a hot PTP, as maintained by the NUMA page-table
// engine (plain data so the auditor needs no dependency on src/numa).
struct AuditReplica {
  PtpId ptp = kNoPtp;
  uint32_t node = 0;
  FrameNumber frame = 0;
  std::vector<uint32_t> hw_raw;  // kPtesPerPtp words
};

struct AuditInput {
  const PhysicalMemory* phys = nullptr;
  const PageCache* page_cache = nullptr;  // may be null (no file mappings)
  const PtpAllocator* ptps = nullptr;
  const ReverseMap* rmap = nullptr;       // may be null
  // May be null when the page tables hold no swap entries; with one set,
  // swap-slot reference counts, swap-cache residency, and the compressed
  // pool's byte/frame accounting are audited too.
  const ZramStore* zram = nullptr;
  // May be null; with one set, every frame's LRU-list membership is
  // checked against its kind.
  const FrameLru* lru = nullptr;
  std::vector<AuditSpace> spaces;         // every *live* address space
  std::vector<AuditTlbEntry> tlb_entries;
  // Undelivered batched shootdowns; entries they cover are exempt from
  // the stale-TLB checks (but not from the geometry checks).
  std::vector<AuditPendingFlush> pending_flushes;
  // Mirror of VmConfig::hw_l1_write_protect: under that ablation shared
  // PTPs legitimately contain hardware-writable PTEs.
  bool hw_l1_write_protect = false;
  // False when the page tables were built without a reverse map (rmap
  // checks are skipped; everything else still runs).
  bool rmap_maintained = true;
  // KSM stable-tree snapshot as (content, frame) pairs — plain data, so
  // the auditor needs no dependency on the daemon. With ksm_audited set,
  // the tree is cross-checked against frame state: every node's frame
  // must be a live anonymous ksm_stable frame whose content equals the
  // node's key, no frame may appear under two keys, and the node count
  // must equal the ksm_stable frame count (the tree <-> frame bijection).
  // Independently of this snapshot, no PTE mapping a ksm_stable frame may
  // be hardware-writable (checked whenever such a frame exists).
  bool ksm_audited = false;
  std::vector<std::pair<uint64_t, FrameNumber>> ksm_stable;
  // NUMA page-table replica snapshot (src/numa): one entry per per-node
  // replica of a hot PTP, with the replica's full hardware-word image.
  // With numa_audited set, every replica is checked against the master
  // PTP: the master must be live, at most one replica per (ptp, node), the
  // replica frame must be a kPageTable frame on the replica's node with
  // ref_count 1 / map_count 0 and distinct from every master frame, the
  // node must differ from the master's home node, and the words must be
  // bit-identical to the master's hardware table (write-through coherence).
  bool numa_audited = false;
  std::vector<AuditReplica> replicas;
};

// Runs every check and returns the violations found (empty == healthy).
AuditReport AuditInvariants(const AuditInput& input);

}  // namespace sat

#endif  // SRC_VM_AUDIT_H_
