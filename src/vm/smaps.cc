#include "src/vm/smaps.h"

#include <sstream>

namespace sat {

namespace {

// Number of processes mapping `frame`: the sum over its rmap entries of
// each mapping PTP's sharer count (a shared PTP's single PTE stands for
// all of its sharers).
uint32_t ProcessMapCount(FrameNumber frame, const PtpAllocator& ptps,
                         const ReverseMap* rmap) {
  if (rmap == nullptr) {
    return 1;
  }
  uint32_t count = 0;
  rmap->ForEach(frame, [&](const RmapEntry& entry) {
    count += ptps.SharerCount(entry.ptp);
  });
  return count == 0 ? 1 : count;
}

}  // namespace

SmapsReport GenerateSmaps(const MmStruct& mm, const PtpAllocator& ptps,
                          const ReverseMap* rmap,
                          const PhysicalMemory* phys) {
  SmapsReport report;
  const PageTable& pt = mm.page_table();

  mm.ForEachVma([&](const VmArea& vma) {
    VmaReport row;
    row.name = vma.name.empty() ? vma.ToString() : vma.name;
    row.start = vma.start;
    row.end = vma.end;
    row.size_kb = (vma.end - vma.start) / 1024;

    // The sharer count of the vma's own mapping PTP, per page.
    for (uint64_t va64 = vma.start; va64 < vma.end; va64 += kPageSize) {
      const auto va = static_cast<VirtAddr>(va64);
      if (pt.SectionAt(va) != nullptr) {
        // Translated by a 1 MB section: resident and huge, but the frames
        // are permanent kernel text shared by the whole zygote group, so
        // — like the vdso — they charge no process's PSS and count as
        // shared.
        row.rss_kb += 4;
        row.huge_kb += 4;
        row.shared_clean_kb += 4;
        continue;
      }
      const auto ref = pt.FindPte(va);
      if (!ref || !ref->ptp->hw(ref->index).valid()) {
        continue;
      }
      row.rss_kb += 4;
      const HwPte hw = ref->ptp->hw(ref->index);
      if (hw.large()) {
        // A 64 KB replica. PSS stays fractional the same way as for 4 KB
        // pages: the replica's frame has one rmap entry per mapping PTP,
        // each standing for that PTP's sharers.
        row.huge_kb += 4;
      }
      const FrameNumber frame = MappedFrameOf(hw, ref->index);
      const uint32_t mappers = ProcessMapCount(frame, ptps, rmap);
      row.pss_kb += 4.0 / mappers;
      if (mappers > 1) {
        row.shared_clean_kb += 4;
      } else {
        row.private_kb += 4;
      }
      if (phys != nullptr && phys->frame(frame).ksm_stable) {
        row.ksm_merged_kb += 4;
      }
    }

    report.total_size_kb += row.size_kb;
    report.total_rss_kb += row.rss_kb;
    report.total_pss_kb += row.pss_kb;
    report.total_ksm_merged_kb += row.ksm_merged_kb;
    report.total_huge_kb += row.huge_kb;
    report.vmas.push_back(std::move(row));
  });

  for (uint32_t slot = 0; slot < kUserPtpSlots; ++slot) {
    if (!pt.l1(slot).present()) {
      continue;
    }
    report.page_table_kb += 4;
    const uint32_t sharers = ptps.SharerCount(pt.l1(slot).ptp);
    report.page_table_pss_kb += 4.0 / sharers;
    if (pt.l1(slot).need_copy) {
      report.shared_ptps++;
    }
  }
  return report;
}

std::string SmapsReport::ToString() const {
  std::ostringstream os;
  for (const VmaReport& vma : vmas) {
    os << std::hex << vma.start << "-" << vma.end << std::dec << " "
       << vma.name << "\n"
       << "  Size: " << vma.size_kb << " kB  Rss: " << vma.rss_kb
       << " kB  Pss: " << vma.pss_kb << " kB  Shared_Clean: "
       << vma.shared_clean_kb << " kB  Private: " << vma.private_kb
       << " kB  KsmMerged: " << vma.ksm_merged_kb
       << " kB  HugePages: " << vma.huge_kb << " kB\n";
  }
  os << "Total: Size " << total_size_kb << " kB, Rss " << total_rss_kb
     << " kB, Pss " << total_pss_kb << " kB, KsmMerged "
     << total_ksm_merged_kb << " kB, HugePages " << total_huge_kb << " kB\n"
     << "PageTables: " << page_table_kb << " kB (Pss " << page_table_pss_kb
     << " kB, " << shared_ptps << " shared PTPs)\n";
  return os.str();
}

}  // namespace sat
