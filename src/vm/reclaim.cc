#include "src/vm/reclaim.h"

#include <cassert>

#include "src/arch/check.h"
#include "src/trace/trace.h"
#include "src/vm/swap.h"

namespace sat {

uint32_t Reclaimer::UnmapAll(FrameNumber frame, const ReclaimFlushFn& flush,
                             ReclaimStats* stats) {
  // Snapshot: clearing mutates the rmap.
  const std::vector<RmapEntry> mappings = rmap_->MappingsOf(frame);
  uint32_t cleared = 0;
  for (const RmapEntry& mapping : mappings) {
    PageTablePage& ptp = ptps_->Get(mapping.ptp);
    // The validity bits may have rotted off under fault injection; the
    // rmap entry is the ground truth that a reference is held here, so
    // tear the mapping down either way. Read the global bit before the
    // clear destroys it: it decides how wide the shootdown must reach.
    const bool global =
        ptp.hw(mapping.index).valid() && ptp.hw(mapping.index).global();
    ptp.Clear(mapping.index);
    rmap_->Remove(frame, mapping.ptp, mapping.index);
    phys_->UnrefFrame(frame);
    if (flush) {
      flush(mapping.va, mapping.ptp, global);
    }
    stats->tlb_flushes++;
    cleared++;
  }
  stats->ptes_cleared += cleared;
  counters_->ptes_cleared_by_reclaim += cleared;
  return cleared;
}

bool Reclaimer::ReclaimPage(FileId file, uint32_t page_index,
                            const ReclaimFlushFn& flush, ReclaimStats* stats) {
  const FrameNumber frame = page_cache_->Lookup(file, page_index);
  if (frame == PageCache::kNoFrame) {
    stats->pages_skipped++;
    return false;
  }

  // Reclaimability: clean 4 KB mappings only. Pages mapped writable could
  // be dirty (no writeback modelled), and pages inside a 64 KB large-page
  // block would require splitting the block first (as Linux splits THPs);
  // both are skipped.
  bool reclaimable = true;
  rmap_->ForEach(frame, [&](const RmapEntry& mapping) {
    const HwPte& pte = ptps_->Get(mapping.ptp).hw(mapping.index);
    if (pte.large() || pte.perm() == PtePerm::kReadWrite) {
      reclaimable = false;
    }
  });
  if (!reclaimable) {
    stats->pages_skipped++;
    return false;
  }

  const uint32_t cleared = UnmapAll(frame, flush, stats);
  page_cache_->RemovePage(file, page_index);
  stats->pages_reclaimed++;
  counters_->pages_reclaimed++;
  Tracer::Emit(tracer_, TraceEventType::kReclaimPage, 0, frame, cleared);
  return true;
}

ReclaimStats Reclaimer::ReclaimFileCache(uint32_t target,
                                         const ReclaimFlushFn& flush) {
  TraceSpan span(tracer_, TraceEventType::kReclaimPass);
  ReclaimStats stats;
  if (lru_ != nullptr) {
    // Scan the file LRU from its head, at most one full list length per
    // call. Unreclaimable candidates (dirty-mapped, large-page blocks)
    // rotate to the tail so the next pass starts with fresh candidates
    // instead of rescanning the same skips.
    uint64_t budget = lru_->size(LruList::kFile);
    while (budget-- > 0 && stats.pages_reclaimed < target) {
      const FrameNumber frame = lru_->PopHead(LruList::kFile);
      const PageFrame& meta = phys_->frame(frame);
      SAT_CHECK(meta.kind == FrameKind::kFileCache);
      if (!ReclaimPage(meta.file, meta.file_page_index, flush, &stats)) {
        lru_->PushTail(LruList::kFile, frame);
        counters_->lru_rotations++;
      }
      // On success the frame was freed and left the LRU via the
      // lifecycle observer.
    }
  } else {
    // No LRU attached (standalone construction): physical-order scan.
    const auto total = static_cast<FrameNumber>(phys_->total_frames());
    for (FrameNumber frame = 1;
         frame < total && stats.pages_reclaimed < target; ++frame) {
      const PageFrame& meta = phys_->frame(frame);
      if (meta.kind != FrameKind::kFileCache) {
        continue;
      }
      ReclaimPage(meta.file, meta.file_page_index, flush, &stats);
    }
  }
  span.set_args(target, stats.pages_reclaimed);
  return stats;
}

}  // namespace sat
