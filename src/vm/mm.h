// MmStruct: one user address space — the region list plus the page table
// (the mm_struct analogue).

#ifndef SRC_VM_MM_H_
#define SRC_VM_MM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/arch/domain.h"
#include "src/pt/page_table.h"
#include "src/vm/vm_area.h"

namespace sat {

class MmStruct {
 public:
  MmStruct(PtpAllocator* alloc, PhysicalMemory* phys, KernelCounters* counters,
           DomainId user_domain, ReverseMap* rmap = nullptr)
      : page_table_(alloc, phys, counters, rmap), user_domain_(user_domain) {}

  MmStruct(const MmStruct&) = delete;
  MmStruct& operator=(const MmStruct&) = delete;

  PageTable& page_table() { return page_table_; }
  const PageTable& page_table() const { return page_table_; }

  // The ARM domain this address space's user mappings live in: kDomainUser
  // normally, kDomainZygote for zygote-like processes (Section 3.2.3).
  DomainId user_domain() const { return user_domain_; }
  void set_user_domain(DomainId domain) { user_domain_ = domain; }

  // -------------------------------------------------------------------------
  // Region list.
  // -------------------------------------------------------------------------

  const VmArea* FindVma(VirtAddr va) const;
  VmArea* FindVmaMutable(VirtAddr va);

  // Inserts a region; asserts it is page aligned and non-overlapping.
  void InsertVma(VmArea vma);

  // Removes [start, end) from the region list, splitting partially covered
  // regions. Returns the removed pieces (for the caller to clear PTEs of).
  std::vector<VmArea> RemoveRange(VirtAddr start, VirtAddr end);

  // All regions overlapping [start, end).
  std::vector<const VmArea*> VmasOverlapping(VirtAddr start, VirtAddr end) const;

  // Regions overlapping a 2 MB PTP slot.
  std::vector<const VmArea*> VmasInSlot(uint32_t slot) const;

  // Lowest gap of `length` bytes within [low, high); nullopt if none.
  std::optional<VirtAddr> FindFreeRange(uint32_t length, VirtAddr low,
                                        VirtAddr high) const;

  // As FindFreeRange, but the returned address is `alignment`-aligned
  // (alignment must be a power of two ≥ the page size). Used by the 2 MB
  // mapping policy for shared-library code segments.
  std::optional<VirtAddr> FindFreeRangeAligned(uint32_t length,
                                               uint32_t alignment,
                                               VirtAddr low,
                                               VirtAddr high) const;

  void ForEachVma(const std::function<void(const VmArea&)>& fn) const;

  // Drops every region without touching the page table (exit path; the
  // caller releases the page table separately).
  void RemoveAllVmas() { vmas_.clear(); }

  size_t vma_count() const { return vmas_.size(); }

  // Total mapped bytes.
  uint64_t MappedBytes() const;

 private:
  PageTable page_table_;
  DomainId user_domain_;
  // Keyed by start address.
  std::map<VirtAddr, VmArea> vmas_;
};

}  // namespace sat

#endif  // SRC_VM_MM_H_
