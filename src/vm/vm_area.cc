#include "src/vm/vm_area.h"

#include <iomanip>
#include <sstream>

namespace sat {

std::string VmArea::ToString() const {
  std::ostringstream os;
  os << "VmArea{0x" << std::hex << std::setw(8) << std::setfill('0') << start
     << "-0x" << std::setw(8) << end << std::dec << " " << prot.ToString();
  switch (kind) {
    case VmKind::kFilePrivate:
      os << "p file=" << file << "+" << file_page_offset;
      break;
    case VmKind::kFileShared:
      os << "s file=" << file << "+" << file_page_offset;
      break;
    case VmKind::kAnonPrivate:
      os << "p anon";
      break;
    case VmKind::kAnonShared:
      os << "s anon";
      break;
  }
  if (global) {
    os << " global";
  }
  if (is_stack) {
    os << " stack";
  }
  if (!name.empty()) {
    os << " \"" << name << "\"";
  }
  os << "}";
  return os.str();
}

}  // namespace sat
