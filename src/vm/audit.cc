#include "src/vm/audit.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/arch/check.h"
#include "src/arch/pte.h"
#include "src/mem/zram.h"
#include "src/pt/page_table.h"
#include "src/vm/swap.h"

namespace sat {

namespace {

// Accumulates the audit state one pass builds for the next to consume.
class Auditor {
 public:
  explicit Auditor(const AuditInput& input) : in_(input) {
    SAT_CHECK(in_.phys != nullptr && in_.ptps != nullptr);
    pte_maps_.assign(in_.phys->total_frames(), 0);
  }

  AuditReport Run() {
    CollectSwapCache();
    RecountPtps();
    CheckFrames();
    CheckSwapStore();
    CheckKsm();
    CheckNumaReplicas();
    CheckPtpSharers();
    CheckSpaces();
    CheckTlb();
    return std::move(report_);
  }

 private:
  void Fail(const char* check, const std::string& detail) {
    report_.violations.push_back(AuditViolation{check, detail});
  }

  // One verified fact. Returns `fact` so call sites read as assertions.
  bool Checked(bool fact) {
    report_.checks++;
    return fact;
  }

  // -------------------------------------------------------------------
  // Pass 0: snapshot the swap cache (frame -> slot) so the frame pass can
  // count cache references; the cache's own bidirectionality is verified
  // in CheckSwapStore.
  // -------------------------------------------------------------------
  void CollectSwapCache() {
    if (in_.zram == nullptr) {
      return;
    }
    in_.zram->ForEachSlot([&](SwapSlotId id, uint32_t /*ref_count*/,
                              uint32_t /*bytes*/, FrameNumber cached) {
      if (cached == ZramStore::kNoFrame) {
        return;
      }
      if (!Checked(swap_cache_frames_.emplace(cached, id).second)) {
        Fail("swap-cache-duplicate",
             "frame " + std::to_string(cached) +
                 " is the swap-cache residence of two slots");
      }
    });
  }

  // -------------------------------------------------------------------
  // Pass 1: walk every live PTP, recounting present entries and frame
  // mappings from the raw descriptors.
  // -------------------------------------------------------------------
  void RecountPtps() {
    in_.ptps->ForEachLive([&](const PageTablePage& ptp) {
      uint32_t present = 0;
      for (uint32_t i = 0; i < kPtesPerPtp; ++i) {
        const HwPte& hw = ptp.hw(i);
        const LinuxPte& sw = ptp.sw(i);
        if (!Checked(hw.valid() == sw.present())) {
          Fail("shadow-desync",
               "ptp " + std::to_string(ptp.id()) + " index " +
                   std::to_string(i) + ": hw valid=" +
                   std::to_string(hw.valid()) +
                   " but sw present=" + std::to_string(sw.present()));
        }
        if (sw.is_swap()) {
          // A swap entry is strictly a non-present software PTE: the
          // hardware descriptor must be invalid (enforced redundantly
          // with shadow-desync above, since present implies valid).
          if (!Checked(!sw.present())) {
            Fail("swap-pte-present",
                 "ptp " + std::to_string(ptp.id()) + " index " +
                     std::to_string(i) + ": swap entry for slot " +
                     std::to_string(sw.swap_slot()) + " is marked present");
          }
          if (!Checked(!hw.valid())) {
            Fail("swap-pte-mapped",
                 "ptp " + std::to_string(ptp.id()) + " index " +
                     std::to_string(i) + ": swap entry for slot " +
                     std::to_string(sw.swap_slot()) +
                     " coexists with a valid hardware PTE");
          }
          if (!Checked(in_.zram != nullptr)) {
            Fail("swap-pte-no-store",
                 "ptp " + std::to_string(ptp.id()) + " index " +
                     std::to_string(i) +
                     " holds a swap entry but no zram store was audited");
          } else if (!Checked(in_.zram->SlotLive(sw.swap_slot()))) {
            Fail("swap-pte-dead-slot",
                 "ptp " + std::to_string(ptp.id()) + " index " +
                     std::to_string(i) + " references freed swap slot " +
                     std::to_string(sw.swap_slot()));
          } else {
            swap_pte_refs_[sw.swap_slot()]++;
          }
        }
        if (!hw.valid()) {
          continue;
        }
        present++;
        if (hw.large() &&
            !Checked(hw.frame() % kPtesPerLargePage == 0)) {
          Fail("large-misaligned",
               "ptp " + std::to_string(ptp.id()) + " index " +
                   std::to_string(i) + ": large-page base frame " +
                   std::to_string(hw.frame()) + " not 64 KB aligned");
        }
        const FrameNumber frame = MappedFrameOf(hw, i);
        if (!Checked(frame < pte_maps_.size())) {
          Fail("pte-frame-range",
               "ptp " + std::to_string(ptp.id()) + " index " +
                   std::to_string(i) + " maps frame " +
                   std::to_string(frame) + " beyond physical memory");
          continue;
        }
        pte_maps_[frame]++;
        // A KSM stable frame is shared by content: a writable mapping
        // would let one sharer corrupt every other's "bytes". This is the
        // analogue of NEED_COPY write protection, and it is unconditional
        // (even under the hw-L1-write-protect ablation the daemon
        // downgrades the PTE itself).
        if (in_.phys->frame(frame).ksm_stable &&
            !Checked(hw.perm() != PtePerm::kReadWrite)) {
          Fail("ksm-stable-writable",
               "ptp " + std::to_string(ptp.id()) + " index " +
                   std::to_string(i) + " maps KSM stable frame " +
                   std::to_string(frame) + " hardware-writable");
        }
      }
      if (!Checked(present == ptp.present_count())) {
        Fail("present-count",
             "ptp " + std::to_string(ptp.id()) + ": present_count says " +
                 std::to_string(ptp.present_count()) + ", recount found " +
                 std::to_string(present));
      }
      // The all-16-or-none replica invariant: promotion and demotion
      // rewrite every word of a 64 KB block identically, and no PTE path
      // (reclaim, swap-out, clear) touches a single replica — so a run
      // with some-but-not-all large words, or large words that disagree,
      // is torn (only chaos can do that, and scrubd's vote repairs it).
      for (uint32_t run = 0; run < kPtesPerPtp; run += kPtesPerLargePage) {
        uint32_t large_words = 0;
        bool identical = true;
        for (uint32_t i = run; i < run + kPtesPerLargePage; ++i) {
          const HwPte& word = ptp.hw(i);
          if (!word.valid() || !word.large()) {
            continue;
          }
          if (large_words > 0 && !(word == ptp.hw(run))) {
            identical = false;
          }
          large_words++;
        }
        if (large_words == 0) {
          continue;
        }
        if (!Checked(large_words == kPtesPerLargePage)) {
          Fail("large-run-torn",
               "ptp " + std::to_string(ptp.id()) + " run at index " +
                   std::to_string(run) + ": " + std::to_string(large_words) +
                   " of " + std::to_string(kPtesPerLargePage) +
                   " words are large replicas");
        } else if (!Checked(identical)) {
          Fail("large-run-nonuniform",
               "ptp " + std::to_string(ptp.id()) + " run at index " +
                   std::to_string(run) +
                   ": large replicas are not bit-identical");
        }
      }
    });
  }

  // -------------------------------------------------------------------
  // Pass 2: every frame's metadata against the mappings found in pass 1
  // and the page cache's residency.
  // -------------------------------------------------------------------
  void CheckFrames() {
    // Residency: frame -> (file, page) from the cache's own map, with the
    // per-frame back-pointers verified on the way.
    std::unordered_set<FrameNumber> resident;
    if (in_.page_cache != nullptr) {
      in_.page_cache->ForEach([&](FileId file, uint32_t page_index,
                                  FrameNumber frame) {
        const PageFrame& meta = in_.phys->frame(frame);
        if (!Checked(meta.kind == FrameKind::kFileCache)) {
          Fail("cache-kind", "cache entry (" + std::to_string(file) + ", " +
                                 std::to_string(page_index) +
                                 ") names frame " + std::to_string(frame) +
                                 " of kind " + FrameKindName(meta.kind));
        }
        if (!Checked(meta.file == file && meta.file_page_index == page_index)) {
          Fail("cache-backpointer",
               "frame " + std::to_string(frame) + " says (" +
                   std::to_string(meta.file) + ", " +
                   std::to_string(meta.file_page_index) +
                   ") but the cache holds it as (" + std::to_string(file) +
                   ", " + std::to_string(page_index) + ")");
        }
        if (!Checked(resident.insert(frame).second)) {
          Fail("cache-duplicate", "frame " + std::to_string(frame) +
                                      " cached under two (file, page) keys");
        }
      });
    }

    uint64_t free_frames = 0;
    for (FrameNumber f = 0; f < pte_maps_.size(); ++f) {
      const PageFrame& meta = in_.phys->frame(f);
      const uint32_t maps = pte_maps_[f];
      const bool cached = resident.count(f) != 0;
      if (meta.ksm_stable) {
        ksm_stable_frames_++;
        if (!Checked(meta.kind == FrameKind::kAnon)) {
          Fail("ksm-stable-kind",
               std::string(FrameKindName(meta.kind)) + " frame " +
                   std::to_string(f) + " is marked ksm_stable");
        }
      }
      switch (meta.kind) {
        case FrameKind::kFree: {
          free_frames++;
          if (!Checked(meta.ref_count == 0 && meta.map_count == 0)) {
            Fail("free-refcount",
                 "free frame " + std::to_string(f) + " has ref_count " +
                     std::to_string(meta.ref_count) + ", map_count " +
                     std::to_string(meta.map_count));
          }
          if (!Checked(maps == 0)) {
            Fail("free-mapped", "free frame " + std::to_string(f) +
                                    " is mapped by " + std::to_string(maps) +
                                    " PTE(s)");
          }
          if (!Checked(!cached)) {
            Fail("free-cached",
                 "free frame " + std::to_string(f) + " is page-cache resident");
          }
          break;
        }
        case FrameKind::kAnon:
        case FrameKind::kFileCache: {
          const bool swap_cached = swap_cache_frames_.count(f) != 0;
          if (meta.kind == FrameKind::kFileCache && !Checked(!swap_cached)) {
            Fail("swap-cache-file",
                 "file-cache frame " + std::to_string(f) +
                     " is swap-cache resident");
          }
          const uint32_t expected =
              maps + (cached ? 1u : 0u) + (swap_cached ? 1u : 0u);
          if (!Checked(meta.ref_count == expected)) {
            Fail("frame-refcount",
                 std::string(FrameKindName(meta.kind)) + " frame " +
                     std::to_string(f) + ": ref_count " +
                     std::to_string(meta.ref_count) + ", but " +
                     std::to_string(maps) + " PTE mapping(s) + " +
                     (cached ? "1" : "0") + " page-cache + " +
                     (swap_cached ? "1" : "0") + " swap-cache reference");
          }
          if (!Checked(expected > 0)) {
            Fail("frame-leak", std::string(FrameKindName(meta.kind)) +
                                   " frame " + std::to_string(f) +
                                   " has no mapping and no cache reference");
          }
          if (meta.kind == FrameKind::kAnon && !Checked(!cached)) {
            Fail("anon-cached",
                 "anon frame " + std::to_string(f) + " is page-cache resident");
          }
          if (in_.rmap_maintained && in_.rmap != nullptr) {
            const uint32_t rmap_maps = in_.rmap->MapCount(f);
            if (!Checked(rmap_maps == maps)) {
              Fail("rmap-count", "frame " + std::to_string(f) + ": rmap has " +
                                     std::to_string(rmap_maps) +
                                     " entries, page tables hold " +
                                     std::to_string(maps) + " PTE(s)");
            }
          }
          break;
        }
        case FrameKind::kPageTable: {
          if (!Checked(meta.ref_count == 1)) {
            Fail("ptp-frame-refcount",
                 "page-table frame " + std::to_string(f) + " has ref_count " +
                     std::to_string(meta.ref_count) + " (expected 1)");
          }
          if (!Checked(maps == 0)) {
            Fail("ptp-frame-mapped",
                 "page-table frame " + std::to_string(f) + " is mapped by " +
                     std::to_string(maps) + " user PTE(s)");
          }
          break;
        }
        case FrameKind::kZram: {
          zram_frame_count_++;
          // Pool frames belong to the store alone: one reference (the
          // pool's), never user-mapped, never cache-resident.
          if (!Checked(meta.ref_count == 1 && maps == 0 && !cached &&
                       swap_cache_frames_.count(f) == 0)) {
            Fail("zram-frame",
                 "zram pool frame " + std::to_string(f) + " has ref_count " +
                     std::to_string(meta.ref_count) + ", " +
                     std::to_string(maps) + " PTE mapping(s), cached=" +
                     std::to_string(cached));
          }
          break;
        }
        case FrameKind::kZero: {
          if (!Checked(f == in_.phys->zero_frame() && meta.ref_count == 1 &&
                       meta.map_count == 0)) {
            Fail("zero-frame", "zero frame " + std::to_string(f) +
                                   " has ref_count " +
                                   std::to_string(meta.ref_count) +
                                   ", map_count " +
                                   std::to_string(meta.map_count));
          }
          break;
        }
        case FrameKind::kQuarantined: {
          // Condemned by the oops/scrub path: held out of circulation
          // until reboot — no references, no mappings, no cache presence,
          // and (checked against free_frames() below) not counted free.
          if (!Checked(meta.ref_count == 0 && maps == 0 && !cached &&
                       swap_cache_frames_.count(f) == 0)) {
            Fail("quarantined-frame",
                 "quarantined frame " + std::to_string(f) + " has ref_count " +
                     std::to_string(meta.ref_count) + ", " +
                     std::to_string(maps) + " PTE mapping(s), cached=" +
                     std::to_string(cached));
          }
          break;
        }
        case FrameKind::kKernel:
          break;  // permanent, unrefcounted, never user-mapped by policy
      }
      if (in_.lru != nullptr) {
        const LruList list = in_.lru->ListOf(f);
        lru_counts_[static_cast<uint32_t>(list)]++;
        bool list_ok;
        switch (meta.kind) {
          case FrameKind::kAnon:
            list_ok = list == LruList::kAnonActive ||
                      list == LruList::kAnonInactive;
            break;
          case FrameKind::kFileCache:
            list_ok = list == LruList::kFile;
            break;
          default:
            list_ok = list == LruList::kNone;
            break;
        }
        if (!Checked(list_ok)) {
          Fail("lru-membership",
               std::string(FrameKindName(meta.kind)) + " frame " +
                   std::to_string(f) + " is on LRU list " +
                   std::to_string(static_cast<int>(list)));
        }
      }
    }
    if (!Checked(free_frames == in_.phys->free_frames())) {
      Fail("free-count", "free_frames() says " +
                             std::to_string(in_.phys->free_frames()) +
                             ", recount found " + std::to_string(free_frames));
    }
    if (in_.lru != nullptr) {
      for (const LruList list : {LruList::kAnonActive, LruList::kAnonInactive,
                                 LruList::kFile}) {
        const uint32_t index = static_cast<uint32_t>(list);
        if (!Checked(lru_counts_[index] == in_.lru->size(list))) {
          Fail("lru-size", "LRU list " + std::to_string(index) + " says " +
                               std::to_string(in_.lru->size(list)) +
                               " frame(s), recount found " +
                               std::to_string(lru_counts_[index]));
        }
      }
    }
  }

  // -------------------------------------------------------------------
  // Pass 2b: the compressed store — every slot's reference count against
  // the swap PTEs and swap-cache entries that justify it, plus the
  // byte/pool accounting.
  // -------------------------------------------------------------------
  void CheckSwapStore() {
    if (in_.zram == nullptr) {
      return;
    }
    uint64_t live = 0;
    uint64_t stored = 0;
    in_.zram->ForEachSlot([&](SwapSlotId id, uint32_t ref_count,
                              uint32_t bytes, FrameNumber cached) {
      live++;
      stored += bytes;
      if (!Checked(bytes > 0 && bytes <= kPageSize)) {
        Fail("swap-slot-bytes", "slot " + std::to_string(id) + " stores " +
                                    std::to_string(bytes) + " bytes");
      }
      const auto it = swap_pte_refs_.find(id);
      const uint32_t pte_refs = it == swap_pte_refs_.end() ? 0 : it->second;
      const uint32_t expected = pte_refs + (cached != ZramStore::kNoFrame);
      if (!Checked(ref_count == expected)) {
        Fail("swap-slot-refcount",
             "slot " + std::to_string(id) + ": ref_count " +
                 std::to_string(ref_count) + ", but " +
                 std::to_string(pte_refs) + " swap PTE(s) + " +
                 (cached != ZramStore::kNoFrame ? "1" : "0") +
                 " swap-cache reference");
      }
      if (!Checked(expected > 0)) {
        Fail("swap-slot-leak",
             "live slot " + std::to_string(id) +
                 " has no swap PTE and no swap-cache entry");
      }
      if (cached != ZramStore::kNoFrame) {
        // The cached copy must be a live anonymous frame, and the cache's
        // reverse direction must agree.
        if (!Checked(cached < in_.phys->total_frames() &&
                     in_.phys->frame(cached).kind == FrameKind::kAnon)) {
          Fail("swap-cache-kind",
               "slot " + std::to_string(id) + " is cached in frame " +
                   std::to_string(cached) + " of kind " +
                   (cached < in_.phys->total_frames()
                        ? FrameKindName(in_.phys->frame(cached).kind)
                        : "out-of-range"));
        }
        const auto back = in_.zram->CacheSlotOf(cached);
        if (!Checked(back.has_value() && *back == id)) {
          Fail("swap-cache-backpointer",
               "slot " + std::to_string(id) + " caches frame " +
                   std::to_string(cached) +
                   " but the frame index disagrees");
        }
      }
    });
    // PTEs must not reference slots the store does not list as live (the
    // per-PTE pass already flagged dead slots; this catches a map that is
    // internally inconsistent about liveness).
    for (const auto& [slot, refs] : swap_pte_refs_) {
      if (!Checked(in_.zram->SlotLive(slot))) {
        Fail("swap-pte-untracked",
             std::to_string(refs) + " swap PTE(s) reference slot " +
                 std::to_string(slot) + ", which the store has freed");
      }
    }
    if (!Checked(live == in_.zram->live_slots())) {
      Fail("swap-live-count", "live_slots() says " +
                                  std::to_string(in_.zram->live_slots()) +
                                  ", recount found " + std::to_string(live));
    }
    if (!Checked(stored == in_.zram->stored_bytes())) {
      Fail("swap-stored-bytes",
           "stored_bytes() says " + std::to_string(in_.zram->stored_bytes()) +
               ", recount found " + std::to_string(stored));
    }
    const uint64_t pool_needed = (stored + kPageSize - 1) / kPageSize;
    if (!Checked(in_.zram->pool_frame_count() == pool_needed)) {
      Fail("swap-pool-size",
           "pool holds " + std::to_string(in_.zram->pool_frame_count()) +
               " frame(s) for " + std::to_string(stored) +
               " stored bytes (expected " + std::to_string(pool_needed) + ")");
    }
    if (!Checked(in_.zram->pool_frame_count() == zram_frame_count_)) {
      Fail("swap-pool-frames",
           "pool claims " + std::to_string(in_.zram->pool_frame_count()) +
               " frame(s), physical memory holds " +
               std::to_string(zram_frame_count_) + " kZram frame(s)");
    }
    if (!Checked(in_.zram->cached_entries() == swap_cache_frames_.size())) {
      Fail("swap-cache-count",
           "cache index holds " + std::to_string(in_.zram->cached_entries()) +
               " entr(ies), slots list " +
               std::to_string(swap_cache_frames_.size()));
    }
  }

  // -------------------------------------------------------------------
  // Pass 2c: the KSM stable tree against the frames it names.
  // -------------------------------------------------------------------
  void CheckKsm() {
    if (!in_.ksm_audited) {
      return;
    }
    std::unordered_set<FrameNumber> seen;
    for (const auto& [content, frame] : in_.ksm_stable) {
      const std::string node = "stable-tree node (content " +
                               std::to_string(content) + ", frame " +
                               std::to_string(frame) + ")";
      if (!Checked(frame < in_.phys->total_frames())) {
        Fail("ksm-node-range", node + " is beyond physical memory");
        continue;
      }
      const PageFrame& meta = in_.phys->frame(frame);
      if (!Checked(meta.kind == FrameKind::kAnon && meta.ksm_stable)) {
        Fail("ksm-node-frame",
             node + " names a " + FrameKindName(meta.kind) +
                 " frame with ksm_stable=" + std::to_string(meta.ksm_stable));
      }
      if (!Checked(meta.content == content)) {
        Fail("ksm-node-content",
             node + ": the frame's content is " + std::to_string(meta.content));
      }
      if (!Checked(seen.insert(frame).second)) {
        Fail("ksm-node-duplicate", node + ": frame appears under two keys");
      }
    }
    // Together with ksm-node-frame this makes tree <-> frames a bijection:
    // every node names a distinct ksm_stable frame, and the counts match.
    if (!Checked(in_.ksm_stable.size() == ksm_stable_frames_)) {
      Fail("ksm-tree-size",
           "stable tree holds " + std::to_string(in_.ksm_stable.size()) +
               " node(s), physical memory holds " +
               std::to_string(ksm_stable_frames_) + " ksm_stable frame(s)");
    }
  }

  // -------------------------------------------------------------------
  // Pass 2d: NUMA page-table replicas against the masters they mirror.
  // -------------------------------------------------------------------
  void CheckNumaReplicas() {
    if (!in_.numa_audited) {
      return;
    }
    std::unordered_set<uint64_t> seen_nodes;  // (ptp << 8) | node
    for (const AuditReplica& r : in_.replicas) {
      const std::string who = "replica of ptp " + std::to_string(r.ptp) +
                              " on node " + std::to_string(r.node);
      const PageTablePage* master = in_.ptps->GetIfLive(r.ptp);
      if (!Checked(master != nullptr)) {
        Fail("replica-stale", who + " outlives its master PTP");
        continue;
      }
      if (!Checked(seen_nodes
                       .insert((static_cast<uint64_t>(
                                    static_cast<uint32_t>(r.ptp))
                                << 8) |
                               r.node)
                       .second)) {
        Fail("replica-duplicate", who + " appears twice");
      }
      if (!Checked(r.frame < in_.phys->total_frames())) {
        Fail("replica-frame", who + ": frame " + std::to_string(r.frame) +
                                  " is beyond physical memory");
        continue;
      }
      const PageFrame& meta = in_.phys->frame(r.frame);
      if (!Checked(meta.kind == FrameKind::kPageTable &&
                   meta.ref_count == 1 && meta.map_count == 0)) {
        Fail("replica-frame",
             who + ": frame " + std::to_string(r.frame) + " is " +
                 FrameKindName(meta.kind) + " with ref_count " +
                 std::to_string(meta.ref_count) + ", map_count " +
                 std::to_string(meta.map_count));
      }
      if (!Checked(r.frame != master->frame())) {
        Fail("replica-frame",
             who + " shares frame " + std::to_string(r.frame) +
                 " with its master");
      }
      if (!Checked(in_.phys->NodeOfFrame(r.frame) == r.node)) {
        Fail("replica-node",
             who + ": frame " + std::to_string(r.frame) + " lives on node " +
                 std::to_string(in_.phys->NodeOfFrame(r.frame)));
      }
      if (!Checked(in_.phys->NodeOfFrame(master->frame()) != r.node)) {
        Fail("replica-home",
             who + " duplicates the master's own home node");
      }
      if (!Checked(r.hw_raw.size() == kPtesPerPtp)) {
        Fail("replica-desync",
             who + " snapshots " + std::to_string(r.hw_raw.size()) +
                 " words (expected " + std::to_string(kPtesPerPtp) + ")");
        continue;
      }
      // Write-through coherence: every replica word bit-identical to the
      // master's hardware table.
      for (uint32_t i = 0; i < kPtesPerPtp; ++i) {
        if (!Checked(r.hw_raw[i] == master->hw(i).raw())) {
          Fail("replica-desync",
               who + " index " + std::to_string(i) + ": replica word " +
                   std::to_string(r.hw_raw[i]) + " vs master " +
                   std::to_string(master->hw(i).raw()));
          break;
        }
      }
    }
  }

  // -------------------------------------------------------------------
  // Pass 3: PTP sharer counts against the L1 entries naming each PTP.
  // -------------------------------------------------------------------
  struct PtpRefs {
    uint32_t count = 0;
    uint32_t need_copy = 0;
    DomainId domain = 0;
    bool domain_mixed = false;
  };

  void CheckPtpSharers() {
    std::unordered_map<PtpId, PtpRefs> refs;
    for (const AuditSpace& space : in_.spaces) {
      const PageTable& pt = space.mm->page_table();
      for (uint32_t slot = 0; slot < kUserPtpSlots; ++slot) {
        const L1Entry& entry = pt.l1(slot);
        if (!entry.present()) {
          continue;
        }
        if (!Checked(in_.ptps->GetIfLive(entry.ptp) != nullptr)) {
          Fail("l1-dangling", "pid " + std::to_string(space.pid) + " slot " +
                                  std::to_string(slot) +
                                  " references dead ptp " +
                                  std::to_string(entry.ptp));
          continue;
        }
        PtpRefs& r = refs[entry.ptp];
        if (r.count == 0) {
          r.domain = entry.domain;
        } else if (r.domain != entry.domain) {
          r.domain_mixed = true;
        }
        r.count++;
        if (entry.need_copy) {
          r.need_copy++;
        }
      }
    }

    in_.ptps->ForEachLive([&](const PageTablePage& ptp) {
      const auto it = refs.find(ptp.id());
      const PtpRefs r = it == refs.end() ? PtpRefs{} : it->second;
      const uint32_t sharers = in_.ptps->SharerCount(ptp.id());
      if (!Checked(sharers == r.count)) {
        Fail("ptp-sharers", "ptp " + std::to_string(ptp.id()) +
                                ": map_count says " + std::to_string(sharers) +
                                " sharer(s), " + std::to_string(r.count) +
                                " L1 entr(ies) reference it");
      }
      if (!Checked(r.count > 0)) {
        Fail("ptp-orphan", "live ptp " + std::to_string(ptp.id()) +
                               " is referenced by no audited address space");
      }
      // Shared by two or more: every reference must carry NEED_COPY —
      // that flag is the only thing standing between a sharer's write and
      // every other sharer's address space.
      if (r.count >= 2 && !Checked(r.need_copy == r.count)) {
        Fail("need-copy-missing",
             "ptp " + std::to_string(ptp.id()) + " has " +
                 std::to_string(r.count) + " sharers but only " +
                 std::to_string(r.need_copy) + " NEED_COPY reference(s)");
      }
      if (!Checked(!r.domain_mixed)) {
        Fail("ptp-domain-mixed", "ptp " + std::to_string(ptp.id()) +
                                     " is referenced under differing domains");
      }
      // A NEED_COPY (COW-shared) PTP must hold no hardware-writable PTE,
      // or a sharer's store would skip the unshare. The hw-L1-write-
      // protect ablation enforces this in the walker instead.
      if (r.need_copy > 0 && !in_.hw_l1_write_protect) {
        for (uint32_t i = 0; i < kPtesPerPtp; ++i) {
          const HwPte& hw = ptp.hw(i);
          if (hw.valid() &&
              !Checked(hw.perm() != PtePerm::kReadWrite)) {
            Fail("need-copy-writable",
                 "ptp " + std::to_string(ptp.id()) + " index " +
                     std::to_string(i) +
                     " is hardware-writable inside a NEED_COPY PTP");
          }
        }
      }
    });
  }

  // -------------------------------------------------------------------
  // Pass 4: per-space task-state consistency (domains, DACR, ASIDs).
  // -------------------------------------------------------------------
  void CheckSpaces() {
    std::unordered_map<uint32_t, Pid> asid_owner;
    for (const AuditSpace& space : in_.spaces) {
      const std::string who = "pid " + std::to_string(space.pid);
      if (!Checked(space.mm != nullptr)) {
        Fail("space-no-mm", who + " audited without an address space");
        continue;
      }
      const auto [it, fresh] = asid_owner.emplace(space.asid, space.pid);
      if (!Checked(fresh)) {
        Fail("asid-duplicate", who + " and pid " + std::to_string(it->second) +
                                   " both hold ASID " +
                                   std::to_string(space.asid));
      }
      if (!Checked(space.asid != 0)) {
        Fail("asid-zero", who + " holds the reserved ASID 0");
      }

      // The zygote triple: flag, DACR grant, and user-domain assignment
      // stand or fall together (Section 3.2.2).
      const bool grants_zygote =
          space.dacr.Get(kDomainZygote) == DomainAccess::kClient;
      const bool in_zygote_domain =
          space.mm->user_domain() == kDomainZygote;
      if (!Checked(space.zygote_like == grants_zygote)) {
        Fail("dacr-zygote", who + (space.zygote_like
                                       ? " is zygote-like without DACR access "
                                         "to the zygote domain"
                                       : " has DACR access to the zygote "
                                         "domain without being zygote-like"));
      }
      if (!Checked(space.zygote_like == in_zygote_domain)) {
        Fail("domain-zygote",
             who + ": zygote_like=" + std::to_string(space.zygote_like) +
                 " but user domain is " +
                 std::to_string(space.mm->user_domain()));
      }
      if (!Checked(space.dacr.Get(kDomainKernel) == DomainAccess::kClient &&
                   space.dacr.Get(kDomainUser) == DomainAccess::kClient)) {
        Fail("dacr-base", who + " lost client access to the kernel or user "
                                "domain (DACR " +
                              space.dacr.ToString() + ")");
      }

      const PageTable& pt = space.mm->page_table();
      for (uint32_t slot = 0; slot < kUserPtpSlots; ++slot) {
        const L1Entry& entry = pt.l1(slot);
        if (entry.present() &&
            !Checked(entry.domain == space.mm->user_domain())) {
          Fail("l1-domain", who + " slot " + std::to_string(slot) +
                                " is in domain " +
                                std::to_string(entry.domain) +
                                " but the space's user domain is " +
                                std::to_string(space.mm->user_domain()));
        }
        for (uint32_t half = 0; half < 2; ++half) {
          const SectionDesc& section = entry.section[half];
          if (!section.present()) {
            continue;
          }
          const VirtAddr section_va = static_cast<VirtAddr>(
              PtpSlotBase(slot) + half * kSectionSize);
          const std::string where =
              who + " section at va " + std::to_string(section_va);
          if (!Checked(section.base % kPtesPerSection == 0) ||
              !Checked(static_cast<uint64_t>(section.base) + kPtesPerSection <=
                       in_.phys->total_frames())) {
            Fail("section-base", where + ": base frame " +
                                     std::to_string(section.base) +
                                     " misaligned or out of range");
            continue;
          }
          // Sections map permanent kernel-owned frames only; they carry
          // no references, so anything reclaimable underneath would be a
          // use-after-free waiting to happen.
          for (uint32_t i = 0; i < kPtesPerSection; ++i) {
            if (!Checked(in_.phys->frame(section.base + i).kind ==
                         FrameKind::kKernel)) {
              Fail("section-frame-kind",
                   where + ": frame " + std::to_string(section.base + i) +
                       " is not a kernel frame");
              break;
            }
          }
          // No valid PTE may hide under a live section: the walker never
          // reaches the second level there, so such a PTE would pin its
          // frame invisibly forever.
          if (entry.present()) {
            for (uint32_t i = 0; i < kPtesPerSection; ++i) {
              const auto ref =
                  pt.FindPte(section_va + i * kPageSize);
              if (ref.has_value() &&
                  !Checked(!ref->ptp->hw(ref->index).valid())) {
                Fail("section-shadowed-pte",
                     where + ": valid PTE at index " +
                         std::to_string(ref->index) +
                         " hides under the section");
                break;
              }
            }
          }
        }
      }
    }
  }

  // -------------------------------------------------------------------
  // Pass 5: every valid TLB entry against the page tables it caches.
  // -------------------------------------------------------------------
  void CheckTlb() {
    std::unordered_map<uint32_t, const AuditSpace*> by_asid;
    for (const AuditSpace& space : in_.spaces) {
      by_asid.emplace(space.asid, &space);
    }

    for (const AuditTlbEntry& snap : in_.tlb_entries) {
      const TlbEntry& e = snap.entry;
      if (!e.valid) {
        continue;
      }
      const std::string where = std::string(snap.which) + " TLB of core " +
                                std::to_string(snap.core) + ", vpn " +
                                std::to_string(e.vpn);
      if (!Checked(e.size_pages == 1 || e.size_pages == 16 ||
                   e.size_pages == kPtesPerSection) ||
          !Checked(e.vpn % e.size_pages == 0)) {
        Fail("tlb-geometry", where + ": size_pages " +
                                 std::to_string(e.size_pages) +
                                 " / misaligned base");
        continue;
      }
      // Under the batched shootdown policy an entry may disagree with the
      // page tables while a covering flush sits undelivered in a pending
      // queue — the kernel has issued the invalidation, the IPI just has
      // not fired yet. Such entries are exempt from the staleness checks.
      if (PendingFlushCovers(snap.core, e)) {
        Checked(true);
        continue;
      }
      const VirtAddr va = e.vpn << kPageShift;
      if (e.global) {
        // Only zygote-preloaded shared code is ever marked global, and it
        // lives in the zygote domain — that is the whole protection story.
        if (!Checked(e.domain == kDomainZygote)) {
          Fail("tlb-global-domain",
               where + ": global entry in domain " + std::to_string(e.domain));
        }
        // A global entry left behind by exited sharers is legal (domains
        // quarantine it); one that *contradicts* a live sharer's page
        // table is not.
        bool any_backing = false;
        bool any_match = false;
        for (const AuditSpace& space : in_.spaces) {
          if (!space.zygote_like) {
            continue;
          }
          if (e.size_pages == kPtesPerSection) {
            // A section entry is backed by a first-level descriptor, not
            // a PTE.
            const SectionDesc* section = space.mm->page_table().SectionAt(va);
            if (section == nullptr) {
              continue;
            }
            any_backing = true;
            if (EntryMatchesSection(e, *section)) {
              any_match = true;
              break;
            }
            continue;
          }
          const HwPte* hw = HwPteAt(space, va);
          if (hw == nullptr) {
            continue;
          }
          any_backing = true;
          if (EntryMatchesPte(e, *hw)) {
            any_match = true;
            break;
          }
        }
        if (any_backing && !Checked(any_match)) {
          Fail("tlb-global-mismatch",
               where + ": global entry matches no zygote-like space's "
                       "current PTE");
        }
        continue;
      }

      const auto it = by_asid.find(e.asid);
      if (!Checked(it != by_asid.end())) {
        Fail("tlb-stale-asid", where + ": entry for ASID " +
                                   std::to_string(e.asid) +
                                   ", which no live task holds");
        continue;
      }
      const AuditSpace& space = *it->second;
      if (e.size_pages == kPtesPerSection) {
        const SectionDesc* section = space.mm->page_table().SectionAt(va);
        if (!Checked(section != nullptr)) {
          Fail("tlb-section-unbacked",
               where + ": section entry with no section descriptor at va " +
                   std::to_string(va) + " in pid " +
                   std::to_string(space.pid));
          continue;
        }
        if (!EntryMatchesSection(e, *section)) {
          Fail("tlb-section-mismatch",
               where + ": section entry (frame " + std::to_string(e.frame) +
                   ") contradicts the first-level descriptor (base " +
                   std::to_string(section->base) + ")");
        }
        const L1Entry& sl1 = space.mm->page_table().l1(PtpSlotIndex(va));
        if (!Checked(e.domain == sl1.domain)) {
          Fail("tlb-domain", where + ": entry domain " +
                                 std::to_string(e.domain) +
                                 " vs first-level domain " +
                                 std::to_string(sl1.domain));
        }
        continue;
      }
      // A smaller entry must not shadow a live section: the walker serves
      // the section, so a 4 KB/64 KB entry for the same range is a relic
      // of a mapping the section replaced.
      if (!Checked(space.mm->page_table().SectionAt(va) == nullptr)) {
        Fail("tlb-shadows-section",
             where + ": " + std::to_string(e.size_pages) +
                 "-page entry shadows a live 1 MB section");
        continue;
      }
      const HwPte* hw = HwPteAt(space, va);
      if (!Checked(hw != nullptr)) {
        Fail("tlb-unbacked", where + ": no valid PTE at va " +
                                 std::to_string(va) + " in pid " +
                                 std::to_string(space.pid));
        continue;
      }
      // The explicit no-shadowing invariant: a 4 KB entry whose backing
      // PTE is (now) a large replica is stale — promotion flushed the run,
      // so one that survived would double-translate the block.
      if (e.size_pages == 1 && hw->large()) {
        Fail("tlb-shadows-large",
             where + ": 4 KB entry shadows a live 64 KB large PTE");
        continue;
      }
      if (!EntryMatchesPte(e, *hw)) {
        Fail("tlb-pte-mismatch",
             where + ": entry (frame " + std::to_string(e.frame) +
                 ", size " + std::to_string(e.size_pages) + ", perm " +
                 std::to_string(static_cast<int>(e.perm)) +
                 ") contradicts PTE " + hw->ToString());
      }
      const L1Entry& l1 = space.mm->page_table().l1(PtpSlotIndex(va));
      if (!Checked(l1.present() && e.domain == l1.domain)) {
        Fail("tlb-domain", where + ": entry domain " +
                               std::to_string(e.domain) +
                               " vs first-level domain " +
                               std::to_string(l1.domain));
      }
    }
  }

  // Does an undelivered pending flush targeting `core` cover this entry?
  bool PendingFlushCovers(uint32_t core, const TlbEntry& e) const {
    for (const AuditPendingFlush& p : in_.pending_flushes) {
      if ((p.cpu_mask & (uint64_t{1} << core)) == 0) {
        continue;
      }
      switch (p.kind) {
        case AuditPendingFlush::Kind::kAll:
          return true;
        case AuditPendingFlush::Kind::kAsid:
          // ASID flushes never touch global entries.
          if (!e.global && e.asid == p.asid) {
            return true;
          }
          break;
        case AuditPendingFlush::Kind::kVa: {
          const uint64_t vpn = VirtPageNumber(p.va);
          if (vpn >= e.vpn && vpn < e.vpn + e.size_pages) {
            return true;
          }
          break;
        }
      }
    }
    return false;
  }

  // The valid hardware PTE backing `va` in `space`, or nullptr.
  static const HwPte* HwPteAt(const AuditSpace& space, VirtAddr va) {
    const auto ref = space.mm->page_table().FindPte(va);
    if (!ref.has_value() || !ref->ptp->hw(ref->index).valid()) {
      return nullptr;
    }
    return &ref->ptp->hw(ref->index);
  }

  // Does the current PTE justify this TLB entry? The entry must name the
  // right frame and granularity and must not grant rights the PTE lacks
  // (equal-or-weaker permissions are fine: a benignly stale read-only
  // entry after a COW upgrade only causes an extra fault).
  // Does the first-level descriptor justify this section entry? Sections
  // are read-only by construction, so the permission bound is fixed.
  bool EntryMatchesSection(const TlbEntry& e, const SectionDesc& s) {
    const bool frame_ok = Checked(e.frame == s.base);
    const bool perm_ok = Checked(static_cast<uint8_t>(e.perm) <=
                                 static_cast<uint8_t>(PtePerm::kReadOnly));
    const bool exec_ok = Checked(!e.executable || s.executable);
    const bool global_ok = Checked(e.global == s.global);
    return frame_ok && perm_ok && exec_ok && global_ok;
  }

  bool EntryMatchesPte(const TlbEntry& e, const HwPte& hw) {
    const bool size_ok =
        Checked((e.size_pages == 16) == hw.large());
    const bool frame_ok =
        Checked(e.size_pages == 16
                    ? e.frame == hw.frame()
                    : e.frame == MappedFrameOf(hw, PteIndexInPtp(
                                                       e.vpn << kPageShift)));
    const bool perm_ok = Checked(static_cast<uint8_t>(e.perm) <=
                                 static_cast<uint8_t>(hw.perm()));
    const bool exec_ok = Checked(!e.executable || hw.executable());
    return size_ok && frame_ok && perm_ok && exec_ok;
  }

  const AuditInput& in_;
  AuditReport report_;
  // PTE mappings per frame, recounted from the raw descriptors.
  std::vector<uint32_t> pte_maps_;
  // Swap PTE references per slot, recounted in pass 1.
  std::unordered_map<SwapSlotId, uint32_t> swap_pte_refs_;
  // frame -> slot snapshot of the swap cache (pass 0).
  std::unordered_map<FrameNumber, SwapSlotId> swap_cache_frames_;
  // kZram frames seen in pass 2, and frames per LRU list.
  uint64_t zram_frame_count_ = 0;
  uint64_t lru_counts_[4] = {};
  // ksm_stable frames seen in pass 2 (for the tree-size cross-check).
  uint64_t ksm_stable_frames_ = 0;
};

}  // namespace

std::string AuditReport::ToString() const {
  std::ostringstream os;
  os << "audit: " << violations.size() << " violation(s) over " << checks
     << " checks";
  for (const AuditViolation& v : violations) {
    os << "\n  [" << v.check << "] " << v.detail;
  }
  return os.str();
}

AuditReport AuditInvariants(const AuditInput& input) {
  return Auditor(input).Run();
}

}  // namespace sat
