// Kernel configuration knobs: which of the paper's mechanisms are active,
// plus the ablation switches discussed in Section 3.1.3.

#ifndef SRC_VM_CONFIG_H_
#define SRC_VM_CONFIG_H_

namespace sat {

struct VmConfig {
  // The paper's primary mechanism: share level-2 page-table pages between
  // parent and child at fork, COW-managed via NEED_COPY.
  bool share_ptps = false;

  // The paper's secondary mechanism: set the global bit on PTEs of
  // zygote-preloaded shared code so TLB entries are shared by all
  // zygote-descended processes (guarded by the zygote domain).
  bool share_tlb_global = false;

  // The "Copied PTEs" comparison kernel of Table 4: copy the PTEs of
  // zygote-preloaded shared *code* from parent to child at fork time
  // instead of relying on soft faults.
  bool copy_zygote_code_ptes_at_fork = false;

  // Ablation: when unsharing a PTP, copy only the PTEs whose referenced
  // ("young") bit is set, letting soft faults repopulate the rest
  // ("Whether Page Table Entries Should Be Copied Upon Unsharing").
  bool copy_referenced_only_on_unshare = false;

  // Ablation: defer the unshare triggered by creating a new memory region
  // inside a shared PTP's range from mmap time to the region's first
  // fault. The paper chooses the eager (mmap-time) variant for simplicity;
  // this switch measures what the lazy variant would save.
  bool lazy_unshare_on_new_region = false;

  // Ablation: fault-around — on a file-backed read fault, also populate
  // up to this many adjacent page-cache-resident pages in the same PTP
  // (Linux gained this in 3.15, after the paper's KitKat-era 3.4 kernel;
  // default off matches the paper's stock kernel). The natural question
  // it answers: how much of the soft-fault saving could batching alone
  // provide, without deduplicating any translations?
  uint32_t fault_around_pages = 0;

  // Ablation: model an x86-style first-level write-protect bit ("Hardware
  // Support"). The per-PTE write-protect pass at share time is skipped;
  // the walker treats NEED_COPY itself as denying writes, and unshare
  // write-protects writable entries as it copies them out.
  bool hw_l1_write_protect = false;

  // Named configurations used throughout the evaluation.
  static VmConfig Stock() { return VmConfig{}; }

  static VmConfig SharedPtp() {
    VmConfig config;
    config.share_ptps = true;
    return config;
  }

  static VmConfig SharedPtpAndTlb() {
    VmConfig config;
    config.share_ptps = true;
    config.share_tlb_global = true;
    return config;
  }

  static VmConfig CopiedPtes() {
    VmConfig config;
    config.copy_zygote_code_ptes_at_fork = true;
    return config;
  }
};

}  // namespace sat

#endif  // SRC_VM_CONFIG_H_
