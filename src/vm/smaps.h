// /proc/pid/smaps, simulated — the tool the paper's own methodology leans
// on (Section 4.1.1 derives the instruction-footprint analysis from
// smaps + page-fault traces).
//
// Beyond Rss, the report computes PSS (proportional set size): each
// mapped page's 4 KB is split evenly among every *process* mapping it.
// With shared PTPs a frame's rmap lists PTEs, not processes, so the
// process count of one mapping is its PTP's sharer count — which the
// report sums correctly.
//
// The same proportional idea is applied to translation memory itself:
// `page_table_kb` is the process's classic page-table footprint, while
// `page_table_pss_kb` divides each PTP's 4 KB by its sharer count. Under
// the stock kernel the two are equal; under shared PTPs the PSS column
// shows where the paper's memory saving lives.

#ifndef SRC_VM_SMAPS_H_
#define SRC_VM_SMAPS_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/pt/rmap.h"
#include "src/vm/mm.h"

namespace sat {

struct VmaReport {
  std::string name;
  VirtAddr start = 0;
  VirtAddr end = 0;
  uint32_t size_kb = 0;
  uint32_t rss_kb = 0;           // resident pages
  double pss_kb = 0;             // proportional share
  uint32_t shared_clean_kb = 0;  // resident pages mapped by >1 process
  uint32_t private_kb = 0;       // resident pages mapped by this one only
  uint32_t ksm_merged_kb = 0;    // resident pages backed by KSM stable frames
  // Resident pages translated at large granularity — 64 KB large-PTE
  // replicas or 1 MB section halves (Linux's AnonHugePages/FilePmdMapped
  // analogue, folded into one field for the two-level ARM table).
  uint32_t huge_kb = 0;
};

struct SmapsReport {
  std::vector<VmaReport> vmas;
  uint32_t total_size_kb = 0;
  uint32_t total_rss_kb = 0;
  double total_pss_kb = 0;
  // Linux's per-smaps KsmMerged accounting: pages whose frame is a KSM
  // stable page. Such pages also count fractionally in PSS — their rmap
  // lists every sharer's mapping.
  uint32_t total_ksm_merged_kb = 0;
  // Pages translated at large granularity across every region.
  uint32_t total_huge_kb = 0;
  // Translation memory: classic per-process footprint and its
  // sharing-aware proportional counterpart.
  uint32_t page_table_kb = 0;
  double page_table_pss_kb = 0;
  uint32_t shared_ptps = 0;

  std::string ToString() const;
};

// Generates the report for one address space. `rmap` may be null (PSS
// then assumes the classic mapcount of 1 per PTE, as in page-table-only
// tests). `phys` may be null (KsmMerged then reads 0 — frame metadata is
// where the KSM stable bit lives).
SmapsReport GenerateSmaps(const MmStruct& mm, const PtpAllocator& ptps,
                          const ReverseMap* rmap,
                          const PhysicalMemory* phys = nullptr);

}  // namespace sat

#endif  // SRC_VM_SMAPS_H_
