// scrubd: the incremental corruption scrubber (graceful degradation's
// repair half; the recoverable-oops machinery in src/arch/check.h is the
// containment half).
//
// The simulated kernel keeps three redundant copies of mapping state: the
// hardware PTE table the walker reads, the Linux shadow table, and the
// kernel-wide reverse map. Chaos injection (FaultInjector corrupt rules)
// flips bits only in the hardware descriptors, zram slot bytes, and TLB
// entry tags — exactly the state real bit rot hits — so the shadow table
// and the rmap survive as the trusted source scrubd repairs from:
//
//   * hardware/shadow desync, rotten frame bits   -> rebuild from the rmap
//     (conservatively read-only and non-global; the next write or execute
//     takes a permission fault that lazily restores precise permissions
//     from the VMA, the same way a minor fault would)
//   * clean file page behind a rotten descriptor  -> drop and refault
//   * spurious-valid descriptor over an empty or
//     swap shadow entry                           -> invalidate in place
//   * zero-page mapping with rotten frame bits    -> re-point at the zero
//     frame (present shadow with no rmap entry can only be a zero page)
//   * shared-PTP descriptor that became writable  -> write-protect again
//   * checksum-bad zram slot, still swap-cached   -> re-duplicate from the
//     cached frame
//
// What has no redundant copy left — an uncached checksum-bad slot, or a
// descriptor whose shadow and rmap disagree — is reported back to the
// kernel as unrepairable; the kernel oops-kills exactly the sharers of the
// damaged PTP or slot (src/proc/kernel.cc, OopsKillByDamage).

#ifndef SRC_VM_SCRUB_H_
#define SRC_VM_SCRUB_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/arch/domain.h"
#include "src/arch/types.h"
#include "src/mem/phys_memory.h"
#include "src/mem/zram.h"
#include "src/pt/ptp.h"
#include "src/pt/rmap.h"
#include "src/stats/counters.h"

namespace sat {

// Kernel-supplied facts the scrubber cannot derive from the memory
// subsystems alone (they live in the tasks' first-level tables and the VM
// configuration).
struct ScrubContext {
  // The L1 domain of the entries referencing a PTP; kDomainUser when no
  // live task references it. Global descriptors are only legal in
  // zygote-domain PTPs.
  std::function<DomainId(PtpId)> domain_of;
  // True when any live task's L1 entry for the PTP carries NEED_COPY
  // (descriptors there must be write-protected, even for a sole sharer).
  std::function<bool(PtpId)> need_copy_of;
  // VmConfig::share_tlb_global: with it off, no descriptor is ever global.
  bool share_tlb_global = false;
  // VmConfig::hw_l1_write_protect: the per-PTE write-protect pass is
  // skipped under that ablation, so writable descriptors in shared PTPs
  // are legal and must not be "repaired".
  bool hw_l1_write_protect = false;
  // NUMA page-table replication (src/numa): the majority hardware word
  // across this site's per-node replicas, or nullopt when the PTP is not
  // replicated / no strict majority exists. A last-resort repair source
  // consulted only when every other redundant copy is gone — the
  // write-through replica protocol keeps replicas bit-identical to the
  // master, so a strict majority outvotes rot in the master word.
  std::function<std::optional<uint32_t>(PtpId, uint32_t)> replica_majority_of;
};

enum class ScrubSiteResult : uint8_t {
  kClean = 0,
  kRepaired,
  kUnrepairable,
};

struct ScrubSiteRef {
  PtpId ptp = kNoPtp;
  uint32_t index = 0;
};

struct ScrubPassResult {
  uint32_t ptps_walked = 0;
  uint32_t repairs = 0;
  // Damage with no redundant copy left; the kernel oops-kills the sharers.
  std::vector<ScrubSiteRef> unrepairable_sites;
  std::vector<SwapSlotId> unrepairable_slots;
};

class Scrubber {
 public:
  Scrubber(PhysicalMemory* phys, PtpAllocator* ptps, ReverseMap* rmap,
           ZramStore* zram, KernelCounters* counters)
      : phys_(phys), ptps_(ptps), rmap_(rmap), zram_(zram),
        counters_(counters) {}

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  // TLB shootdown hook for repaired sites. `va` is the mapped address when
  // the rmap knew it, 0 otherwise (the kernel recovers it from a sharer's
  // L1 slot). Required before RunPass/ScrubSite can repair anything.
  void set_flush_site(
      std::function<void(PtpId ptp, uint32_t index, VirtAddr va)> fn) {
    flush_site_ = std::move(fn);
  }

  // One incremental pass: validates (and repairs in place) up to
  // `ptp_budget` live PTPs starting at the round-robin cursor, then every
  // live zram slot's checksum. Bumps scrub_repairs per repair; collecting
  // unrepairable damage is the caller's job to act on.
  ScrubPassResult RunPass(const ScrubContext& ctx, uint32_t ptp_budget);

  // Validates and, if needed, repairs the single PTE site (`ptp`, `index`)
  // — the touch path's inline detect-and-repair step.
  ScrubSiteResult ScrubSite(PageTablePage& ptp, uint32_t index,
                            const ScrubContext& ctx);

 private:
  // True when the descriptor's frame bits point at a frame that could
  // legally be mapped by a user PTE.
  bool FrameLooksMapped(FrameNumber frame) const;
  // Does the rmap know `frame` is mapped at (`ptp`, `index`)?
  bool RmapHasSite(FrameNumber frame, PtpId ptp, uint32_t index) const;
  // The always-correct conservative rebuild: read-only, non-global,
  // execute-never — a permission/prefetch fault lazily restores the real
  // attributes from the VMA.
  void RebuildFromFrame(PageTablePage& ptp, uint32_t index, FrameNumber frame,
                        VirtAddr va);
  // Drop-and-refault repair for a clean refetchable page.
  void DropSite(PageTablePage& ptp, uint32_t index, FrameNumber frame,
                VirtAddr va);
  // Last-resort repair from the NUMA replica majority (see
  // ScrubContext::replica_majority_of). True when repaired.
  bool TryRepairFromReplicaMajority(PageTablePage& ptp, uint32_t index,
                                    const ScrubContext& ctx);
  // Run-replica voting: the 16 words of a collapsed 64 KB run are
  // bit-identical, so a word that disagrees with a clear majority of its
  // 16-aligned neighbours (rotted valid/large/frame/attribute bits) is
  // outvoted and rewritten as a copy of theirs. True when repaired.
  bool TryRepairRunReplica(PageTablePage& ptp, uint32_t index);

  PhysicalMemory* phys_;
  PtpAllocator* ptps_;
  ReverseMap* rmap_;
  ZramStore* zram_;
  KernelCounters* counters_;
  std::function<void(PtpId, uint32_t, VirtAddr)> flush_site_;
  // Round-robin position (by live-PTP enumeration order) so successive
  // passes cover the whole table population incrementally.
  uint64_t cursor_ = 0;
};

}  // namespace sat

#endif  // SRC_VM_SCRUB_H_
