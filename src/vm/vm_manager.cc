#include "src/vm/vm_manager.h"

#include <algorithm>
#include <cassert>

#include "src/arch/check.h"
#include "src/mem/zram.h"
#include "src/trace/trace.h"

namespace sat {

namespace {

// Default mmap placement window: above the traditional executable/brk zone,
// below the stack zone.
constexpr VirtAddr kMmapLow = 0x00010000;
constexpr VirtAddr kMmapHigh = 0xB0000000;

bool RegionAllows(const VmArea& vma, AccessType access) {
  switch (access) {
    case AccessType::kRead:
      return vma.prot.read;
    case AccessType::kWrite:
      return vma.prot.write;
    case AccessType::kExecute:
      return vma.prot.execute;
  }
  return false;
}

}  // namespace

uint32_t VmManager::SplitLargeBlock(MmStruct& mm, VirtAddr va,
                                    HugeSplitReason reason) {
  const VirtAddr block = va & ~(kLargePageSize - 1);
  PageTable& pt = mm.page_table();
  const auto ref = pt.FindPte(block);
  if (!ref.has_value()) {
    return 0;
  }
  const HwPte hw = ref->ptp->hw(ref->index);
  if (!hw.valid() || !hw.large()) {
    return 0;  // no run here (a run's base replica is always large)
  }
  const uint32_t split = pt.SplitLargeRun(block);
  if (split > 0) {
    counters_->huge_splits++;
    Tracer::Emit(tracer_, TraceEventType::kHugeSplit, 0, VirtPageNumber(block),
                 static_cast<uint64_t>(reason));
  }
  return split;
}

std::optional<uint32_t> VmManager::UnshareIfNeeded(MmStruct& mm, VirtAddr va,
                                                   const TlbFlushFn& flush_tlb,
                                                   Cycles* cycles) {
  PageTable& pt = mm.page_table();
  const uint32_t slot = PtpSlotIndex(va);
  if (!pt.l1(slot).present() || !pt.l1(slot).need_copy) {
    return 0;
  }
  const std::optional<uint32_t> copied =
      pt.TryUnshareSlot(slot, config_.copy_referenced_only_on_unshare,
                        flush_tlb, config_.hw_l1_write_protect);
  if (!copied.has_value()) {
    return std::nullopt;
  }
  *cycles += costs_->unshare_base + *copied * costs_->unshare_per_pte_copy;
  return copied;
}

void VmManager::InstallPte(MmStruct& mm, VirtAddr va, HwPte hw, LinuxPte sw) {
  PageTable& pt = mm.page_table();
  if (!pt.FindPte(va)) {
    pt.EnsurePtp(va, mm.user_domain());
  }
  // Populating a *new* entry in a shared PTP is the paper's read-fault
  // path: the entry becomes visible to every sharer, eliminating their
  // soft faults for this page.
  pt.SetPte(va, hw, sw, pt.SlotNeedsCopy(va));
}

FaultOutcome VmManager::HandleFault(MmStruct& mm, const MemoryAbort& abort,
                                    const TlbFlushFn& flush_tlb) {
  if (tracer_ == nullptr || !tracer_->enabled()) {
    return HandleFaultImpl(mm, abort, flush_tlb);
  }
  // Classify the fault after the fact from the counters it bumped; the
  // span's duration floor is the handler's modelled cost (the simulator
  // charges it in one lump after the handler returns).
  const KernelCounters before = *counters_;
  TraceSpan span(tracer_, TraceEventType::kFaultFile);
  const FaultOutcome out = HandleFaultImpl(mm, abort, flush_tlb);
  TraceEventType type = TraceEventType::kFaultFile;
  uint64_t extra = counters_->ptes_faulted_around - before.ptes_faulted_around;
  if (!out.ok) {
    type = out.oom ? TraceEventType::kFaultOom : TraceEventType::kFaultSegv;
    extra = 0;
  } else if (out.hard) {
    type = TraceEventType::kFaultHard;
    extra = 0;
  } else if (counters_->swap_ins > before.swap_ins) {
    type = TraceEventType::kSwapIn;
    extra = counters_->swap_ins_cache_hit > before.swap_ins_cache_hit ? 1 : 0;
  } else if (counters_->faults_cow > before.faults_cow) {
    type = TraceEventType::kFaultCow;
    extra = out.ptes_copied;
  } else if (counters_->faults_anonymous > before.faults_anonymous) {
    type = TraceEventType::kFaultAnon;
    extra = 0;
  }
  span.set_type(type);
  span.set_args(VirtPageNumber(abort.fault_address), extra);
  span.set_duration(out.kernel_cycles);
  return out;
}

FaultOutcome VmManager::HandleFaultImpl(MmStruct& mm, const MemoryAbort& abort,
                                        const TlbFlushFn& flush_tlb) {
  FaultOutcome out;
  out.kernel_cycles = costs_->fault_trap;

  const VirtAddr va = PageAlignDown(abort.fault_address);
  const VmArea* vma = mm.FindVma(va);
  if (vma == nullptr) {
    out.ok = false;
    return out;
  }
  if (!RegionAllows(*vma, abort.access)) {
    out.ok = false;
    return out;
  }

  // Unshare triggers (Section 3.1.2): a write access into a shared PTP's
  // range (case 1), or — under the lazy-unshare ablation — the first fault
  // on a region created after the PTP was shared (case 3, deferred).
  PageTable& pt = mm.page_table();
  if (pt.SlotNeedsCopy(va) &&
      (abort.access == AccessType::kWrite || !vma->inherited)) {
    const std::optional<uint32_t> copied =
        UnshareIfNeeded(mm, va, flush_tlb, &out.kernel_cycles);
    if (!copied.has_value()) {
      out.ok = false;
      out.oom = true;
      return out;
    }
    out.ptes_copied = *copied;
    out.unshared = true;
  }

  const auto ref = pt.FindPte(va);
  const bool pte_valid = ref.has_value() && ref->ptp->hw(ref->index).valid();

  FaultOutcome leaf = pte_valid ? HandlePermissionFault(mm, *vma, va, abort.access)
                                : HandleTranslationFault(mm, *vma, va, abort.access);
  leaf.kernel_cycles += out.kernel_cycles;
  leaf.unshared = out.unshared;
  leaf.ptes_copied = out.ptes_copied;
  return leaf;
}

FaultOutcome VmManager::HandleTranslationFault(MmStruct& mm, const VmArea& vma,
                                               VirtAddr va, AccessType access) {
  FaultOutcome out;
  PageTable& pt = mm.page_table();
  {
    // A swapped-out page: its PTE is hardware-invalid but carries the
    // swap slot in the software entry.
    const auto ref = pt.FindPte(va);
    if (ref.has_value() && ref->ptp->sw(ref->index).is_swap()) {
      return HandleSwapInFault(mm, vma, va);
    }
  }
  if (!pt.FindPte(va)) {
    if (pt.TryEnsurePtp(va, mm.user_domain()) == nullptr) {
      out.oom = true;
      return out;
    }
    out.kernel_cycles += costs_->fork_per_ptp_alloc;
  }

  if (IsFileBacked(vma.kind)) {
    counters_->faults_file_backed++;
    if (vma.use_large_pages && access != AccessType::kWrite &&
        CanMapLargeBlock(mm, vma, va) && InstallLargeBlock(mm, vma, va)) {
      // One fault populates the whole 64 KB block (Section 2.3.3's
      // large-page complement): 16 replicated descriptors over 16
      // contiguous frames, installable into shared PTPs like any other
      // read-only entry. When no contiguous run is free the install
      // declines and the fault falls through to a plain 4 KB fill.
      out.ok = true;
      return out;
    }
    bool hard = false;
    const FrameNumber file_frame =
        page_cache_->GetOrLoad(vma.file, vma.FilePageFor(va), &hard);
    if (file_frame == PageCache::kNoFrame) {
      out.oom = true;
      return out;
    }
    out.hard = hard;
    if (hard) {
      counters_->faults_hard++;
      out.kernel_cycles += costs_->fault_disk;
    }

    if (access == AccessType::kWrite && IsPrivate(vma.kind)) {
      // First write to a private file page: read + copy in one fault.
      const std::optional<FrameNumber> anon_opt =
          phys_->TryAllocFrame(FrameKind::kAnon);
      if (!anon_opt.has_value()) {
        out.oom = true;
        return out;
      }
      const FrameNumber anon = *anon_opt;
      // The private copy starts with the file page's content.
      phys_->frame(anon).content = phys_->frame(file_frame).content;
      LinuxPte sw;
      sw.set_present(true);
      sw.set_young(true);
      sw.set_dirty(true);
      sw.set_writable(true);
      InstallPte(mm, va,
                 HwPte::MakePage(anon, PtePerm::kReadWrite, /*global=*/false,
                                 vma.prot.execute),
                 sw);
      phys_->UnrefFrame(anon);  // the PTE holds the live reference now
      counters_->faults_cow++;
    } else {
      // Map the page-cache frame. Private-writable and read-only mappings
      // go in write-protected (COW); shared-writable writes go in RW.
      const bool rw = access == AccessType::kWrite && vma.kind == VmKind::kFileShared;
      const bool global = vma.global && config_.share_tlb_global;
      LinuxPte sw;
      sw.set_present(true);
      sw.set_young(true);
      sw.set_dirty(rw);
      sw.set_writable(vma.prot.write);
      InstallPte(mm, va,
                 HwPte::MakePage(file_frame, rw ? PtePerm::kReadWrite : PtePerm::kReadOnly,
                                 global, vma.prot.execute),
                 sw);
      if (config_.fault_around_pages > 1 && access != AccessType::kWrite) {
        FaultAround(mm, vma, va);
      }
    }
    out.ok = true;
    return out;
  }

  // Anonymous memory.
  counters_->faults_anonymous++;
  if (access == AccessType::kWrite) {
    const std::optional<FrameNumber> anon_opt =
        phys_->TryAllocFrame(FrameKind::kAnon);
    if (!anon_opt.has_value()) {
      out.oom = true;
      return out;
    }
    const FrameNumber anon = *anon_opt;
    LinuxPte sw;
    sw.set_present(true);
    sw.set_young(true);
    sw.set_dirty(true);
    sw.set_writable(true);
    InstallPte(mm, va,
               HwPte::MakePage(anon, PtePerm::kReadWrite, /*global=*/false,
                               vma.prot.execute),
               sw);
    phys_->UnrefFrame(anon);
  } else {
    // Read of untouched anonymous memory: the shared zero page, COW.
    LinuxPte sw;
    sw.set_present(true);
    sw.set_young(true);
    sw.set_writable(vma.prot.write);
    InstallPte(mm, va,
               HwPte::MakePage(phys_->zero_frame(), PtePerm::kReadOnly,
                               /*global=*/false, vma.prot.execute),
               sw);
  }
  out.ok = true;
  return out;
}

FaultOutcome VmManager::HandleSwapInFault(MmStruct& mm, const VmArea& vma,
                                          VirtAddr va) {
  FaultOutcome out;
  SAT_CHECK(zram_ != nullptr && "swap PTE without a zram store attached");
  // Besides kAnonPrivate regions, a swap PTE can sit under a *private*
  // file mapping: a COW write there makes a private-dirty page, which is
  // anonymous memory in everything but its VMA's kind. Shared file pages
  // are never anonymous, so they can never have been swapped.
  SAT_CHECK((!IsFileBacked(vma.kind) || IsPrivate(vma.kind)) &&
            "a shared file page cannot have a swap entry");
  PageTable& pt = mm.page_table();
  const auto ref = pt.FindPte(va);
  const SwapSlotId slot = ref->ptp->sw(ref->index).swap_slot();
  counters_->faults_anonymous++;

  FrameNumber frame = zram_->CacheLookup(slot);
  const bool cache_hit = frame != ZramStore::kNoFrame;
  if (cache_hit) {
    // Another sharer (or an earlier fault of ours) already decompressed
    // this slot; reuse its frame.
    counters_->swap_ins_cache_hit++;
    if (!zram_->SlotChecksumOk(slot)) {
      // The compressed copy rotted, but the decompressed frame in the
      // swap cache is intact: recompress from it in place.
      zram_->RepairSlotContent(slot, phys_->frame(frame).content);
      counters_->scrub_repairs++;
    }
  } else {
    // Verify the compressed bytes *before* allocating a frame: on damage
    // nothing was touched, and the oops path sees the slot exactly as the
    // scrubber would.
    SAT_OOPS_CHECK(zram_->SlotChecksumOk(slot),
                   (OopsDamage{OopsDamage::Kind::kSwapSlot,
                               static_cast<int64_t>(slot)}));
    const std::optional<FrameNumber> anon_opt =
        phys_->TryAllocFrame(FrameKind::kAnon);
    if (!anon_opt.has_value()) {
      // Nothing was touched: the swap PTE, the slot and its refcount are
      // exactly as before. The caller reclaims and retries.
      out.oom = true;
      return out;
    }
    frame = *anon_opt;
    // "Decompression" restores the page's content tag from the slot.
    phys_->frame(frame).content = zram_->SlotContent(slot);
    zram_->AddToCache(slot, frame);  // takes its own frame + slot refs
    phys_->UnrefFrame(frame);        // drop the allocator's reference
    out.kernel_cycles += costs_->swap_decompress_page;
  }
  counters_->swap_ins++;

  // Install read-only regardless of the access: a write retries into the
  // COW permission-fault path, which either copies (frame still shared
  // with the swap cache or other mappings) or upgrades in place (the
  // cache entry was auto-dropped with the last swap PTE). That keeps
  // cache-resident frames clean, so a re-swap-out needn't recompress.
  LinuxPte sw;
  sw.set_present(true);
  sw.set_young(true);
  sw.set_writable(vma.prot.write);
  InstallPte(mm, va,
             HwPte::MakePage(frame, PtePerm::kReadOnly, /*global=*/false,
                             vma.prot.execute),
             sw);
  Tracer::Emit(tracer_, TraceEventType::kSwapIn, 0, VirtPageNumber(va),
               cache_hit ? 1 : 0);
  out.ok = true;
  return out;
}

FaultOutcome VmManager::HandlePermissionFault(MmStruct& mm, const VmArea& vma,
                                              VirtAddr va, AccessType access) {
  FaultOutcome out;
  PageTable& pt = mm.page_table();
  if (access != AccessType::kWrite) {
    // A read or execute permission fault on a valid PTE cannot happen
    // with intact attributes: every installed entry is at least
    // read-only, and XN is only ever set from the region's protection.
    // The region allows this access (checked by the caller), so the
    // attribute bits rotted — restore them from the VMA instead of
    // delivering a spurious SIGSEGV.
    const auto rref = pt.FindPte(va);
    SAT_CHECK(rref.has_value());
    const HwPte rot_hw = rref->ptp->hw(rref->index);
    PtePerm perm = rot_hw.perm();
    if (perm != PtePerm::kReadOnly && perm != PtePerm::kReadWrite) {
      // Read-only is always safe: a later write COW-faults and upgrades.
      perm = PtePerm::kReadOnly;
    }
    LinuxPte sw = rref->ptp->sw(rref->index);
    sw.set_young(true);
    pt.UpdatePte(va,
                 HwPte::MakePage(rot_hw.frame(), perm, rot_hw.global(),
                                 vma.prot.execute, rot_hw.large()),
                 sw);
    counters_->scrub_repairs++;
    out.ok = true;
    return out;
  }

  auto ref = pt.FindPte(va);
  SAT_CHECK(ref.has_value());
  if (ref->ptp->hw(ref->index).large()) {
    // A COW write into a collapsed run: the written page is about to
    // diverge from its neighbours, so the block loses uniformity. Demote
    // it to 4 KB PTEs first (the slot is already private — the caller
    // unshared on the write path); the faulting PTE is then small and
    // the ordinary COW logic below applies unchanged.
    SplitLargeBlock(mm, va, HugeSplitReason::kCow);
    ref = pt.FindPte(va);
  }
  const HwPte old_hw = ref->ptp->hw(ref->index);
  LinuxPte sw = ref->ptp->sw(ref->index);
  sw.set_young(true);
  sw.set_dirty(true);

  if (IsFileBacked(vma.kind)) {
    counters_->faults_file_backed++;
  } else {
    counters_->faults_anonymous++;
  }

  if (!IsPrivate(vma.kind)) {
    // Shared mapping: upgrade in place.
    HwPte hw = old_hw;
    hw.set_perm(PtePerm::kReadWrite);
    pt.UpdatePte(va, hw, sw);
    out.ok = true;
    return out;
  }

  // Private mapping: COW. Reuse the frame only when it is anonymous, this
  // PTE is its sole reference, and it is not a KSM stable frame — a stable
  // frame must never be written in place (the analogue of PageKsm in
  // do_wp_page), because the stable tree indexes it by its content.
  const PageFrame& frame_meta = phys_->frame(old_hw.frame());
  if (frame_meta.kind == FrameKind::kAnon && frame_meta.ref_count == 1 &&
      !frame_meta.ksm_stable) {
    HwPte hw = old_hw;
    hw.set_perm(PtePerm::kReadWrite);
    pt.UpdatePte(va, hw, sw);
  } else {
    const std::optional<FrameNumber> anon_opt =
        phys_->TryAllocFrame(FrameKind::kAnon);
    if (!anon_opt.has_value()) {
      out.oom = true;
      return out;
    }
    // Read the old frame's metadata before SetPte: dropping the PTE's
    // reference may free the frame (last sharer of a stable page).
    const FrameNumber old_frame = old_hw.frame();
    const uint64_t old_content = frame_meta.content;
    const bool was_ksm = frame_meta.ksm_stable;
    phys_->frame(*anon_opt).content = old_content;
    pt.SetPte(va,
              HwPte::MakePage(*anon_opt, PtePerm::kReadWrite, /*global=*/false,
                              vma.prot.execute),
              sw);
    phys_->UnrefFrame(*anon_opt);
    counters_->faults_cow++;
    if (was_ksm) {
      // COW away from a stable frame: this sharer just unmerged.
      counters_->ksm_unmerge_faults++;
      Tracer::Emit(tracer_, TraceEventType::kKsmUnmerge, 0,
                   VirtPageNumber(va), old_frame);
    }
  }
  out.ok = true;
  return out;
}

void VmManager::FaultAround(MmStruct& mm, const VmArea& vma, VirtAddr va) {
  // Populate page-cache-resident neighbours in a window around the fault
  // (clipped to the vma), without touching disk and without marking them
  // referenced. The speculative entries land in shared PTPs like any
  // other read-fault population.
  const uint32_t window = config_.fault_around_pages;
  const VirtAddr window_base = PageAlignDown(va) & ~((window * kPageSize) - 1);
  const VirtAddr lo = std::max(vma.start, window_base);
  const VirtAddr hi = static_cast<VirtAddr>(std::min<uint64_t>(
      vma.end, static_cast<uint64_t>(window_base) + window * kPageSize));
  const bool global = vma.global && config_.share_tlb_global;
  PageTable& pt = mm.page_table();
  for (uint64_t around64 = lo; around64 < hi; around64 += kPageSize) {
    const auto around = static_cast<VirtAddr>(around64);
    if (around == PageAlignDown(va)) {
      continue;
    }
    if (pt.SectionAt(around) != nullptr) {
      continue;  // already translated by a 1 MB section — no PTE wanted
    }
    const auto ref = pt.FindPte(around);
    if (ref.has_value() && ref->ptp->hw(ref->index).valid()) {
      continue;
    }
    const FrameNumber frame =
        page_cache_->Lookup(vma.file, vma.FilePageFor(around));
    if (frame == PageCache::kNoFrame) {
      continue;  // not resident: fault-around never reads from disk
    }
    LinuxPte sw;
    sw.set_present(true);
    sw.set_writable(vma.prot.write);
    InstallPte(mm, around,
               HwPte::MakePage(frame, PtePerm::kReadOnly, global,
                               vma.prot.execute),
               sw);
    counters_->ptes_faulted_around++;
  }
}

bool VmManager::CanMapLargeBlock(MmStruct& mm, const VmArea& vma,
                                 VirtAddr va) const {
  const VirtAddr block_va = va & ~(kLargePageSize - 1);
  // The whole block must lie inside the region, and the region's file
  // backing must be block-aligned so virtual and file blocks coincide.
  if (block_va < vma.start || block_va + kLargePageSize > vma.end) {
    return false;
  }
  if (vma.FilePageFor(block_va) % kPtesPerLargePage != 0) {
    return false;
  }
  if (vma.prot.write) {
    return false;  // large pages are for read-only/executable mappings
  }
  if (mm.page_table().SectionAt(block_va) != nullptr) {
    return false;  // a 1 MB section already covers this block
  }
  // No page of the block may already be mapped at 4 KB granularity.
  for (uint32_t i = 0; i < kPtesPerLargePage; ++i) {
    const auto ref = mm.page_table().FindPte(block_va + i * kPageSize);
    if (ref.has_value() && ref->ptp->hw(ref->index).valid()) {
      return false;
    }
  }
  return true;
}

bool VmManager::InstallLargeBlock(MmStruct& mm, const VmArea& vma,
                                  VirtAddr va) {
  const VirtAddr block_va = va & ~(kLargePageSize - 1);
  bool hard = false;
  const uint32_t block_index = vma.FilePageFor(block_va) / kPtesPerLargePage;
  const FrameNumber base =
      page_cache_->GetOrLoadLargeBlock(vma.file, block_index, &hard);
  if (base == PageCache::kNoFrame) {
    return false;
  }
  if (hard) {
    counters_->faults_hard++;
  }
  const bool global = vma.global && config_.share_tlb_global;
  for (uint32_t i = 0; i < kPtesPerLargePage; ++i) {
    LinuxPte sw;
    sw.set_present(true);
    sw.set_young(true);
    InstallPte(mm, block_va + i * kPageSize,
               HwPte::MakePage(base, PtePerm::kReadOnly, global,
                               vma.prot.execute, /*large=*/true),
               sw);
  }
  return true;
}

bool VmManager::SlotSharable(const MmStruct& mm, uint32_t slot) const {
  const auto vmas = mm.VmasInSlot(slot);
  if (vmas.empty()) {
    return false;
  }
  for (const VmArea* vma : vmas) {
    // The stack is the one design-choice exclusion (Section 4.2.1): it is
    // written immediately after the child runs, so sharing would only add
    // an unshare to the critical path.
    if (vma->is_stack) {
      return false;
    }
  }
  return true;
}

ForkResult VmManager::Fork(MmStruct& parent, MmStruct& child,
                           const TlbFlushFn& flush_parent_tlb) {
  ForkResult result;
  result.cycles = costs_->fork_base;
  counters_->forks++;

  const uint64_t allocs_before = counters_->ptps_allocated;

  parent.ForEachVma([&](const VmArea& vma) {
    VmArea copy = vma;
    copy.inherited = true;
    child.InsertVma(std::move(copy));
    result.vmas_copied++;
  });
  result.cycles += static_cast<Cycles>(result.vmas_copied) * costs_->fork_per_vma;

  PageTable& ppt = parent.page_table();
  PageTable& cpt = child.page_table();
  bool parent_mappings_downgraded = false;

  for (uint32_t slot = 0; slot < kUserPtpSlots && result.ok; ++slot) {
    if (!ppt.l1(slot).present()) {
      continue;
    }
    const auto vmas = parent.VmasInSlot(slot);
    if (vmas.empty()) {
      continue;  // stale PTP with no live regions: nothing to inherit
    }

    if (config_.share_ptps && SlotSharable(parent, slot)) {
      const uint32_t wp =
          ppt.ShareSlotInto(cpt, slot, config_.hw_l1_write_protect);
      result.slots_shared++;
      result.ptes_write_protected += wp;
      if (wp > 0) {
        parent_mappings_downgraded = true;
      }
      result.cycles += costs_->fork_per_ptp_share +
                       static_cast<Cycles>(wp) * costs_->fork_per_pte_wrprotect;
      continue;
    }

    // Stock path for this slot. File-backed PTEs that a soft fault can
    // recreate are skipped (Linux's fork optimization); anonymous memory
    // and COW-dirtied pages must be copied.
    SAT_CHECK(!ppt.l1(slot).need_copy &&
              "a previously shared slot became unsharable without an unshare");
    const VirtAddr base = PtpSlotBase(slot);
    for (size_t v = 0; v < vmas.size() && result.ok; ++v) {
      const VmArea* vma = vmas[v];
      const VirtAddr lo = std::max(vma->start, base);
      const VirtAddr hi = static_cast<VirtAddr>(
          std::min<uint64_t>(vma->end, static_cast<uint64_t>(base) + kPtpSpan));
      const bool copy_file_ptes = config_.copy_zygote_code_ptes_at_fork &&
                                  vma->zygote_preloaded && vma->prot.execute;
      for (uint64_t va64 = lo; va64 < hi; va64 += kPageSize) {
        const auto va = static_cast<VirtAddr>(va64);
        const auto ref = ppt.FindPte(va);
        if (!ref || !ref->ptp->hw(ref->index).valid()) {
          // A swapped-out page is inherited as a swap PTE: the child gets
          // its own slot reference and faults the page in on demand.
          if (ref && ref->ptp->sw(ref->index).is_swap()) {
            if (cpt.TryEnsurePtp(va, child.user_domain()) == nullptr) {
              result.ok = false;
              break;
            }
            cpt.SetPte(va, HwPte{}, ref->ptp->sw(ref->index));
            result.ptes_copied++;
            counters_->ptes_copied++;
            result.cycles += costs_->fork_per_pte_copy;
          }
          continue;
        }
        const HwPte parent_hw = ref->ptp->hw(ref->index);
        const LinuxPte parent_sw = ref->ptp->sw(ref->index);
        // A rotted parent PTE must not be propagated into the child (nor
        // fed to frame(), which trusts its argument).
        SAT_OOPS_CHECK(parent_hw.frame() < phys_->total_frames(),
                       (OopsDamage{OopsDamage::Kind::kPtp, ref->ptp->id()}));
        const FrameKind frame_kind = phys_->frame(parent_hw.frame()).kind;
        const bool anon_frame =
            frame_kind == FrameKind::kAnon || frame_kind == FrameKind::kZero;
        if (IsFileBacked(vma->kind) && !anon_frame && !copy_file_ptes) {
          continue;  // refilled by a soft fault in the child
        }

        // Allocate the child's PTP before downgrading anything in the
        // parent, so an ENOMEM fork leaves the parent untouched apart
        // from already-downgraded (still correct, COW-safe) mappings.
        if (cpt.TryEnsurePtp(va, child.user_domain()) == nullptr) {
          result.ok = false;
          break;
        }
        HwPte child_hw = parent_hw;
        if (IsPrivate(vma->kind) && vma->prot.write &&
            parent_hw.perm() == PtePerm::kReadWrite) {
          // COW: downgrade the parent's live mapping and the child's copy.
          HwPte downgraded = parent_hw;
          downgraded.WriteProtect();
          ppt.UpdatePte(va, downgraded, parent_sw);
          child_hw.WriteProtect();
          parent_mappings_downgraded = true;
        }
        cpt.SetPte(va, child_hw, parent_sw);
        result.ptes_copied++;
        counters_->ptes_copied++;
        result.cycles += costs_->fork_per_pte_copy;
      }
    }
  }

  result.child_ptps_allocated =
      static_cast<uint32_t>(counters_->ptps_allocated - allocs_before);
  result.cycles += static_cast<Cycles>(result.child_ptps_allocated) *
                   costs_->fork_per_ptp_alloc;

  // Sections copy by value after the slot loop: ShareSlotInto overwrites
  // the child's whole L1 entry, so copying here keeps them regardless of
  // which path handled the slot. They carry no refcounts (permanent
  // kernel frames), so a failed fork's teardown needs no undo.
  if (result.ok) {
    for (uint32_t slot = 0; slot < kUserPtpSlots; ++slot) {
      if (ppt.l1(slot).any_section()) {
        ppt.CopySectionsInto(cpt, slot);
      }
    }
  }

  if (parent_mappings_downgraded && flush_parent_tlb) {
    flush_parent_tlb();
  }
  return result;
}

VirtAddr VmManager::Mmap(MmStruct& mm, const MmapRequest& request,
                         const TlbFlushFn& flush_tlb, bool* out_oom) {
  SAT_CHECK(request.length > 0 && IsPageAligned(request.length));
  if (out_oom != nullptr) {
    *out_oom = false;
  }
  VirtAddr addr;
  if (request.fixed_address != 0) {
    SAT_CHECK(IsPageAligned(request.fixed_address));
    SAT_CHECK(mm.VmasOverlapping(request.fixed_address,
                                 request.fixed_address + request.length)
                  .empty() &&
              "MAP_FIXED over an existing mapping is not supported");
    addr = request.fixed_address;
  } else {
    const auto found = mm.FindFreeRange(request.length, kMmapLow, kMmapHigh);
    if (!found) {
      return 0;
    }
    addr = *found;
  }

  // Section 3.1.2 case 3: a new region inside a shared PTP's range
  // unshares it eagerly (unless the lazy ablation defers to first fault).
  if (!config_.lazy_unshare_on_new_region) {
    Cycles cycles = 0;
    const uint32_t first = PtpSlotIndex(addr);
    const uint32_t last = PtpSlotIndex(addr + request.length - 1);
    for (uint32_t slot = first; slot <= last; ++slot) {
      if (!UnshareIfNeeded(mm, PtpSlotBase(slot), flush_tlb, &cycles)) {
        if (out_oom != nullptr) {
          *out_oom = true;
        }
        return 0;  // no region inserted; earlier unshares stay (harmless)
      }
    }
  }

  VmArea vma;
  vma.start = addr;
  vma.end = addr + request.length;
  vma.prot = request.prot;
  vma.kind = request.kind;
  vma.file = request.file;
  vma.file_page_offset = request.file_page_offset;
  vma.global = request.global;
  vma.is_stack = request.is_stack;
  vma.zygote_preloaded = request.zygote_preloaded;
  vma.use_large_pages = request.use_large_pages;
  vma.mergeable = request.mergeable;
  vma.inherited = false;
  vma.name = request.name;
  mm.InsertVma(std::move(vma));
  return addr;
}

void VmManager::Munmap(MmStruct& mm, VirtAddr start, uint32_t length,
                       const TlbFlushFn& flush_tlb, bool* out_oom) {
  SAT_CHECK(IsPageAligned(start) && IsPageAligned(length) && length > 0);
  if (out_oom != nullptr) {
    *out_oom = false;
  }
  const VirtAddr end = start + length;
  if (mm.VmasOverlapping(start, end).empty()) {
    return;  // nothing mapped here
  }
  PageTable& pt = mm.page_table();
  const uint32_t first = PtpSlotIndex(start);
  const uint32_t last = PtpSlotIndex(end - 1);

  // Unshare (Section 3.1.2 case 4) *before* touching any region, so an
  // allocation failure leaves the address space exactly as it was. A
  // spanned slot needs its private copy only if some region will survive
  // in it after the removal; slots emptied entirely are released instead
  // (case 5), which never allocates.
  for (uint32_t slot = first; slot <= last; ++slot) {
    if (!pt.l1(slot).present() || !pt.l1(slot).need_copy) {
      continue;
    }
    const VirtAddr base = PtpSlotBase(slot);
    const VirtAddr slot_end =
        static_cast<VirtAddr>(static_cast<uint64_t>(base) + kPtpSpan);
    bool survivor = false;
    for (const VmArea* vma : mm.VmasInSlot(slot)) {
      const VirtAddr lo = std::max(vma->start, base);
      const VirtAddr hi = std::min(vma->end, slot_end);
      if (!(start <= lo && hi <= end)) {
        survivor = true;  // part of this region's slice outlives the unmap
        break;
      }
    }
    if (!survivor) {
      continue;
    }
    Cycles cycles = 0;
    if (!UnshareIfNeeded(mm, base, flush_tlb, &cycles)) {
      if (out_oom != nullptr) {
        *out_oom = true;
      }
      return;
    }
  }

  // Demote before clearing: a partially unmapped 64 KB run must not be
  // left as a torn set of large replicas. Only the two boundary blocks
  // can be cut (interior blocks are removed whole), and a run cut by a
  // boundary always extends into surviving pages, so its slot was just
  // unshared above.
  if ((start & (kLargePageSize - 1)) != 0) {
    SplitLargeBlock(mm, start, HugeSplitReason::kMunmap);
  }
  if ((end & (kLargePageSize - 1)) != 0) {
    SplitLargeBlock(mm, end, HugeSplitReason::kMunmap);
  }
  // An unmapped range overlapping a 1 MB section drops the whole section
  // descriptor (this mm's view only): any surviving pages of the half
  // simply refault as ordinary 4 KB file pages.
  for (uint64_t half = SectionAlignDown(start); half < end;
       half += kSectionSize) {
    const auto section_va = static_cast<VirtAddr>(half);
    if (pt.SectionAt(section_va) != nullptr) {
      pt.ClearSection(section_va);
      counters_->huge_splits++;
      Tracer::Emit(tracer_, TraceEventType::kHugeSplit, 0,
                   VirtPageNumber(section_va),
                   static_cast<uint64_t>(HugeSplitReason::kMunmap));
    }
  }

  mm.RemoveRange(start, end);

  for (uint32_t slot = first; slot <= last; ++slot) {
    if (!pt.l1(slot).present()) {
      continue;
    }
    const VirtAddr base = PtpSlotBase(slot);
    const VirtAddr lo = std::max(base, start);
    const VirtAddr hi = static_cast<VirtAddr>(
        std::min<uint64_t>(static_cast<uint64_t>(base) + kPtpSpan, end));

    if (mm.VmasInSlot(slot).empty()) {
      // Section 3.1.2 case 5 analogue: nothing left in this 2 MB range, so
      // just drop our reference — the PTP lives on for the other sharers,
      // or dies here if we were the last.
      pt.ReleaseSlot(slot);
      continue;
    }
    pt.ClearRange(lo, hi);
  }
  if (flush_tlb) {
    flush_tlb();
  }
}

void VmManager::Mprotect(MmStruct& mm, VirtAddr start, uint32_t length,
                         VmProt prot, const TlbFlushFn& flush_tlb,
                         bool* out_oom) {
  SAT_CHECK(IsPageAligned(start) && IsPageAligned(length) && length > 0);
  if (out_oom != nullptr) {
    *out_oom = false;
  }
  const VirtAddr end = start + length;

  // Section 3.1.2 case 2: region modification unshares every spanned PTP.
  // Done before the region split so an allocation failure changes nothing.
  PageTable& pt = mm.page_table();
  Cycles cycles = 0;
  const uint32_t first = PtpSlotIndex(start);
  const uint32_t last = PtpSlotIndex(end - 1);
  for (uint32_t slot = first; slot <= last; ++slot) {
    if (pt.l1(slot).present()) {
      if (!UnshareIfNeeded(mm, PtpSlotBase(slot), flush_tlb, &cycles)) {
        if (out_oom != nullptr) {
          *out_oom = true;
        }
        return;
      }
    }
  }

  // A protection change cutting through a 64 KB run makes the block
  // non-uniform, so the boundary blocks demote first (every spanned slot
  // is private after the loop above). Fully covered blocks keep their
  // large replicas: ClearRange and WriteProtectRange rewrite whole runs
  // uniformly.
  if ((start & (kLargePageSize - 1)) != 0) {
    SplitLargeBlock(mm, start, HugeSplitReason::kMprotect);
  }
  if ((end & (kLargePageSize - 1)) != 0) {
    SplitLargeBlock(mm, end, HugeSplitReason::kMprotect);
  }
  // A section's permission is baked into its descriptor (read-only,
  // maybe-executable), so any mprotect overlapping one drops it and lets
  // the pages refault at 4 KB with the new protection.
  for (uint64_t half = SectionAlignDown(start); half < end;
       half += kSectionSize) {
    const auto section_va = static_cast<VirtAddr>(half);
    if (pt.SectionAt(section_va) != nullptr) {
      pt.ClearSection(section_va);
      counters_->huge_splits++;
      Tracer::Emit(tracer_, TraceEventType::kHugeSplit, 0,
                   VirtPageNumber(section_va),
                   static_cast<uint64_t>(HugeSplitReason::kMprotect));
    }
  }

  // Split at the boundaries and re-insert the covered pieces with the new
  // protection.
  auto pieces = mm.RemoveRange(start, end);
  for (VmArea& piece : pieces) {
    piece.prot = prot;
    mm.InsertVma(std::move(piece));
  }

  if (!prot.read) {
    pt.ClearRange(start, end);
  } else if (!prot.write) {
    pt.WriteProtectRange(start, end);
  }
  if (flush_tlb) {
    flush_tlb();
  }
}

void VmManager::ExitMm(MmStruct& mm) {
  mm.page_table().ReleaseAll();
  mm.RemoveAllVmas();
}

}  // namespace sat
