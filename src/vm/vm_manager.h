// VmManager: the machine-independent memory-management entry points of the
// simulated kernel — page-fault handling, fork-time address-space copying
// (with the paper's PTP sharing), and the mmap/munmap/mprotect system
// calls with their unshare triggers (Section 3.1.2's five cases).

#ifndef SRC_VM_VM_MANAGER_H_
#define SRC_VM_VM_MANAGER_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "src/arch/fault.h"
#include "src/mem/page_cache.h"
#include "src/mem/phys_memory.h"
#include "src/stats/cost_model.h"
#include "src/stats/counters.h"
#include "src/vm/config.h"
#include "src/vm/mm.h"

namespace sat {

class Tracer;
class ZramStore;

// Invoked whenever the kernel must flush the current process's TLB entries
// (unshare, fork COW protection). Supplied by the process layer, which
// knows ASIDs and owns the TLB; may be empty in page-table-only tests.
using TlbFlushFn = std::function<void()>;

// Why a collapsed 64 KB run (or an eager 1 MB section) was demoted —
// carried in the `b` payload of kHugeSplit trace events.
enum class HugeSplitReason : uint8_t {
  kMunmap = 0,   // partial munmap cut through the block
  kMprotect,     // partial mprotect made the block non-uniform
  kCow,          // a COW write diverged one page of the run
};

struct FaultOutcome {
  bool ok = false;            // false => SIGSEGV (unresolvable) or OOM
  bool oom = false;           // false fault result was a failed allocation,
                              // not a bad access: reclaim-and-retry, not
                              // SIGSEGV
  bool hard = false;          // missed the page cache ("disk" read)
  bool unshared = false;      // the fault triggered a PTP unshare
  uint32_t ptes_copied = 0;   // unshare copy volume
  Cycles kernel_cycles = 0;   // time spent in the handler
};

struct ForkResult {
  bool ok = true;                      // false => ENOMEM; the child's mm
                                       // holds partial state the caller
                                       // must tear down (ExitMm)
  uint32_t vmas_copied = 0;
  uint32_t slots_shared = 0;           // PTPs shared into the child
  uint32_t ptes_copied = 0;            // PTEs copied the stock way
  uint32_t ptes_write_protected = 0;   // share-time protection pass
  uint32_t child_ptps_allocated = 0;   // fresh PTPs the child needed
  Cycles cycles = 0;                   // modelled cost of the fork
};

struct MmapRequest {
  // Page-aligned length in bytes.
  uint32_t length = 0;
  VmProt prot;
  VmKind kind = VmKind::kAnonPrivate;
  FileId file = kNoFile;
  uint32_t file_page_offset = 0;
  // If nonzero, map exactly here (MAP_FIXED without overlap).
  VirtAddr fixed_address = 0;
  bool global = false;
  bool is_stack = false;
  bool zygote_preloaded = false;
  bool use_large_pages = false;
  // Register the region with KSM at creation (equivalent to an immediate
  // madvise(MADV_MERGEABLE); Kernel::Madvise can also set it later).
  bool mergeable = false;
  std::string name;
};

class VmManager {
 public:
  VmManager(PhysicalMemory* phys, PageCache* page_cache,
            KernelCounters* counters, const CostModel* costs, VmConfig config)
      : phys_(phys),
        page_cache_(page_cache),
        counters_(counters),
        costs_(costs),
        config_(config) {}

  VmManager(const VmManager&) = delete;
  VmManager& operator=(const VmManager&) = delete;

  const VmConfig& config() const { return config_; }
  void set_config(const VmConfig& config) { config_ = config; }

  // Fault handling reports per-fault spans (classified by kind) when set.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Swap store for resolving swap-entry faults. Without one, swap PTEs
  // never exist and the fault paths are unchanged.
  void set_zram(ZramStore* zram) { zram_ = zram; }

  // -------------------------------------------------------------------------
  // Page faults.
  // -------------------------------------------------------------------------

  // Resolves a translation or permission abort against `mm`. Covers soft
  // fills from the page cache, anonymous zero-fill, COW copies, populate-
  // into-shared-PTP, and write-triggered unsharing.
  FaultOutcome HandleFault(MmStruct& mm, const MemoryAbort& abort,
                           const TlbFlushFn& flush_tlb);

  // -------------------------------------------------------------------------
  // Fork.
  // -------------------------------------------------------------------------

  // Copies `parent`'s address space into the empty `child`, honouring the
  // configured kernel (stock / copied-PTEs / shared-PTPs).
  // `flush_parent_tlb` runs when fork write-protects live parent mappings.
  ForkResult Fork(MmStruct& parent, MmStruct& child,
                  const TlbFlushFn& flush_parent_tlb);

  // -------------------------------------------------------------------------
  // The mmap family.
  // -------------------------------------------------------------------------

  // Returns the mapped address, or 0 on failure (no free range, or — when
  // `out_oom` reports true — an eager unshare that could not allocate its
  // private PTP). Eagerly unshares overlapped shared PTPs (Section 3.1.2
  // case 3) unless the lazy-unshare ablation is on. On OOM no region is
  // inserted; any slots already unshared stay unshared (harmless — the
  // address space remains consistent, just less shared), so the caller
  // can reclaim and retry.
  VirtAddr Mmap(MmStruct& mm, const MmapRequest& request,
                const TlbFlushFn& flush_tlb, bool* out_oom = nullptr);

  // Munmap/Mprotect can also hit OOM in their unshare step. They unshare
  // *before* mutating regions or PTEs, so an OOM (reported via `out_oom`)
  // leaves the address space exactly as it was.
  void Munmap(MmStruct& mm, VirtAddr start, uint32_t length,
              const TlbFlushFn& flush_tlb, bool* out_oom = nullptr);

  void Mprotect(MmStruct& mm, VirtAddr start, uint32_t length, VmProt prot,
                const TlbFlushFn& flush_tlb, bool* out_oom = nullptr);

  // Releases every region and page-table page (process exit).
  void ExitMm(MmStruct& mm);

  // Unshares the slot containing `va` if this mm holds it NEED_COPY.
  // Returns PTEs copied, or nullopt if the private PTP could not be
  // allocated (the slot is then untouched); accumulates modelled cost
  // into *cycles. Public because the KSM daemon must privatize a shared
  // PTP before repointing one of its PTEs at a stable frame.
  std::optional<uint32_t> UnshareIfNeeded(MmStruct& mm, VirtAddr va,
                                          const TlbFlushFn& flush_tlb,
                                          Cycles* cycles);

  // Demotes the 64 KB large-page run covering `va` back to 4 KB PTEs (a
  // pure representation change: same frames, same permissions). No-op
  // when the block holds no large run. The containing slot must be
  // private — every call site either just unshared it or proved no run
  // can span the boundary otherwise. Returns replicas rewritten. Public
  // because reclaim-adjacent callers (tests, future policies) demote too.
  uint32_t SplitLargeBlock(MmStruct& mm, VirtAddr va, HugeSplitReason reason);

 private:
  // HandleFault minus the tracing wrapper.
  FaultOutcome HandleFaultImpl(MmStruct& mm, const MemoryAbort& abort,
                               const TlbFlushFn& flush_tlb);

  // Installs the PTE for a resolved fault, routing through the shared-PTP
  // populate path when the slot is shared.
  void InstallPte(MmStruct& mm, VirtAddr va, HwPte hw, LinuxPte sw);

  FaultOutcome HandleTranslationFault(MmStruct& mm, const VmArea& vma,
                                      VirtAddr va, AccessType access);
  // Resolves a fault on a swap PTE: swap-cache lookup or a fresh frame
  // "decompressed" from the zram store, installed read-only so the COW
  // machinery keeps cache-shared frames clean.
  FaultOutcome HandleSwapInFault(MmStruct& mm, const VmArea& vma, VirtAddr va);
  // Speculatively populates resident neighbours of a read fault (the
  // fault-around ablation).
  void FaultAround(MmStruct& mm, const VmArea& vma, VirtAddr va);
  // Whether `va`'s 64 KB block can be mapped with one large page, and the
  // install itself (16 replicated PTEs over 16 contiguous frames). The
  // install returns false when no contiguous run is available; the fault
  // then falls back to ordinary 4 KB pages.
  bool CanMapLargeBlock(MmStruct& mm, const VmArea& vma, VirtAddr va) const;
  bool InstallLargeBlock(MmStruct& mm, const VmArea& vma, VirtAddr va);
  FaultOutcome HandlePermissionFault(MmStruct& mm, const VmArea& vma,
                                     VirtAddr va, AccessType access);

  // Whether every region overlapping `slot` may live in a shared PTP.
  bool SlotSharable(const MmStruct& mm, uint32_t slot) const;

  PhysicalMemory* phys_;
  PageCache* page_cache_;
  KernelCounters* counters_;
  const CostModel* costs_;
  VmConfig config_;
  Tracer* tracer_ = nullptr;
  ZramStore* zram_ = nullptr;
};

}  // namespace sat

#endif  // SRC_VM_VM_MANAGER_H_
