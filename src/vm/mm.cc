#include "src/vm/mm.h"

#include <cassert>
#include <utility>

#include "src/arch/check.h"

namespace sat {

const VmArea* MmStruct::FindVma(VirtAddr va) const {
  auto it = vmas_.upper_bound(va);
  if (it == vmas_.begin()) {
    return nullptr;
  }
  --it;
  return it->second.Contains(va) ? &it->second : nullptr;
}

VmArea* MmStruct::FindVmaMutable(VirtAddr va) {
  return const_cast<VmArea*>(std::as_const(*this).FindVma(va));
}

void MmStruct::InsertVma(VmArea vma) {
  SAT_CHECK(IsPageAligned(vma.start) && IsPageAligned(vma.end));
  SAT_CHECK(vma.start < vma.end);
  SAT_CHECK(vma.end <= kUserSpaceEnd);
  // Overlap check against neighbours.
  auto next = vmas_.lower_bound(vma.start);
  if (next != vmas_.end()) {
    SAT_CHECK(next->second.start >= vma.end && "overlapping vma insert");
  }
  if (next != vmas_.begin()) {
    auto prev = std::prev(next);
    SAT_CHECK(prev->second.end <= vma.start && "overlapping vma insert");
  }
  const VirtAddr start = vma.start;
  vmas_.emplace(start, std::move(vma));
}

std::vector<VmArea> MmStruct::RemoveRange(VirtAddr start, VirtAddr end) {
  assert(IsPageAligned(start) && IsPageAligned(end) && start < end);
  std::vector<VmArea> removed;
  auto it = vmas_.upper_bound(start);
  if (it != vmas_.begin()) {
    --it;
  }
  while (it != vmas_.end() && it->second.start < end) {
    VmArea& vma = it->second;
    if (!vma.Overlaps(start, end)) {
      ++it;
      continue;
    }
    VmArea original = vma;
    it = vmas_.erase(it);

    // Left remainder.
    if (original.start < start) {
      VmArea left = original;
      left.end = start;
      vmas_.emplace(left.start, left);
    }
    // Right remainder.
    if (original.end > end) {
      VmArea right = original;
      right.start = end;
      if (IsFileBacked(right.kind)) {
        right.file_page_offset =
            original.file_page_offset + ((end - original.start) >> kPageShift);
      }
      it = vmas_.emplace(right.start, right).first;
      ++it;
    }
    // The removed middle.
    VmArea middle = original;
    middle.start = std::max(original.start, start);
    middle.end = std::min(original.end, end);
    if (IsFileBacked(middle.kind)) {
      middle.file_page_offset =
          original.file_page_offset + ((middle.start - original.start) >> kPageShift);
    }
    removed.push_back(std::move(middle));
  }
  return removed;
}

std::vector<const VmArea*> MmStruct::VmasOverlapping(VirtAddr start,
                                                     VirtAddr end) const {
  std::vector<const VmArea*> out;
  auto it = vmas_.upper_bound(start);
  if (it != vmas_.begin()) {
    --it;
  }
  for (; it != vmas_.end() && it->second.start < end; ++it) {
    if (it->second.Overlaps(start, end)) {
      out.push_back(&it->second);
    }
  }
  return out;
}

std::vector<const VmArea*> MmStruct::VmasInSlot(uint32_t slot) const {
  const VirtAddr base = PtpSlotBase(slot);
  return VmasOverlapping(base, base + kPtpSpan);
}

std::optional<VirtAddr> MmStruct::FindFreeRange(uint32_t length, VirtAddr low,
                                                VirtAddr high) const {
  assert(IsPageAligned(length) && length > 0);
  VirtAddr candidate = low;
  auto it = vmas_.upper_bound(low);
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > candidate) {
      candidate = prev->second.end;
    }
  }
  for (; it != vmas_.end() && candidate + length <= high; ++it) {
    if (it->second.start >= candidate &&
        it->second.start - candidate >= length) {
      return candidate;
    }
    if (it->second.end > candidate) {
      candidate = it->second.end;
    }
  }
  if (candidate + length <= high) {
    return candidate;
  }
  return std::nullopt;
}

std::optional<VirtAddr> MmStruct::FindFreeRangeAligned(uint32_t length,
                                                       uint32_t alignment,
                                                       VirtAddr low,
                                                       VirtAddr high) const {
  assert(alignment >= kPageSize && (alignment & (alignment - 1)) == 0);
  const VirtAddr mask = alignment - 1;
  VirtAddr candidate = (low + mask) & ~mask;
  while (candidate + length <= high) {
    const auto overlapping = VmasOverlapping(candidate, candidate + length);
    if (overlapping.empty()) {
      return candidate;
    }
    // Jump past the last overlapping region and re-align.
    const VirtAddr next = overlapping.back()->end;
    candidate = (next + mask) & ~mask;
    if (candidate == 0) {
      break;  // wrapped
    }
  }
  return std::nullopt;
}

void MmStruct::ForEachVma(const std::function<void(const VmArea&)>& fn) const {
  for (const auto& [start, vma] : vmas_) {
    fn(vma);
  }
}

uint64_t MmStruct::MappedBytes() const {
  uint64_t total = 0;
  for (const auto& [start, vma] : vmas_) {
    total += vma.end - vma.start;
  }
  return total;
}

}  // namespace sat
