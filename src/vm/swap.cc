#include "src/vm/swap.h"

#include "src/arch/check.h"
#include "src/trace/trace.h"

namespace sat {

FrameLru::FrameLru(uint64_t total_frames) : nodes_(total_frames) {
  for (uint32_t i = 0; i < kNumLists; ++i) {
    heads_[i] = kNil;
    tails_[i] = kNil;
  }
}

void FrameLru::OnFrameAllocated(FrameNumber frame, FrameKind kind) {
  switch (kind) {
    case FrameKind::kAnon:
      PushTail(LruList::kAnonInactive, frame);
      break;
    case FrameKind::kFileCache:
      PushTail(LruList::kFile, frame);
      break;
    default:
      break;  // page tables, kernel, zram pool: never reclaim candidates
  }
}

void FrameLru::OnFrameFreed(FrameNumber frame, FrameKind kind) {
  (void)kind;
  Remove(frame);
}

FrameNumber FrameLru::PopHead(LruList list) {
  const uint32_t i = Index(list);
  const FrameNumber frame = heads_[i];
  SAT_CHECK(frame != kNil && "PopHead on an empty LRU list");
  Remove(frame);
  return frame;
}

void FrameLru::PushTail(LruList list, FrameNumber frame) {
  SAT_CHECK(list != LruList::kNone);
  Node& node = nodes_[frame];
  SAT_CHECK(node.list == LruList::kNone && "frame already on an LRU list");
  const uint32_t i = Index(list);
  node.list = list;
  node.prev = tails_[i];
  node.next = kNil;
  if (tails_[i] != kNil) {
    nodes_[tails_[i]].next = frame;
  } else {
    heads_[i] = frame;
  }
  tails_[i] = frame;
  sizes_[i]++;
}

void FrameLru::Remove(FrameNumber frame) {
  Node& node = nodes_[frame];
  if (node.list == LruList::kNone) {
    return;
  }
  const uint32_t i = Index(node.list);
  if (node.prev != kNil) {
    nodes_[node.prev].next = node.next;
  } else {
    heads_[i] = node.next;
  }
  if (node.next != kNil) {
    nodes_[node.next].prev = node.prev;
  } else {
    tails_[i] = node.prev;
  }
  SAT_CHECK(sizes_[i] > 0);
  sizes_[i]--;
  node = Node{};
}

void SwapManager::AgeActiveList() {
  // Keep the inactive list at least as long as the active one by demoting
  // from the active head (its coldest end). Referenced pages demoted here
  // get their second chance on the inactive list: the scan re-activates
  // them instead of evicting.
  while (!lru_->empty(LruList::kAnonActive) &&
         lru_->size(LruList::kAnonInactive) <
             lru_->size(LruList::kAnonActive)) {
    lru_->PushTail(LruList::kAnonInactive,
                   lru_->PopHead(LruList::kAnonActive));
  }
}

bool SwapManager::SwapOutOne(const ReclaimFlushFn& flush) {
  AgeActiveList();
  uint64_t budget = lru_->size(LruList::kAnonInactive);
  while (budget-- > 0) {
    const FrameNumber frame = lru_->PopHead(LruList::kAnonInactive);
    const std::vector<RmapEntry> mappings = rmap_->MappingsOf(frame);

    bool young = false;
    bool dirty = false;
    bool large = false;
    for (const RmapEntry& mapping : mappings) {
      const PageTablePage& ptp = ptps_->Get(mapping.ptp);
      young |= ptp.sw(mapping.index).young();
      dirty |= ptp.sw(mapping.index).dirty();
      large |= ptp.hw(mapping.index).large();
    }
    if (large) {
      // Would need block splitting; rotate instead of rescanning.
      lru_->PushTail(LruList::kAnonInactive, frame);
      counters_->lru_rotations++;
      continue;
    }
    if (young) {
      // Second chance: harvest the referenced bits (with invalidation so
      // the next access sets them again through the soft-fault path) and
      // promote the page.
      for (const RmapEntry& mapping : mappings) {
        PageTablePage& ptp = ptps_->Get(mapping.ptp);
        LinuxPte sw = ptp.sw(mapping.index);
        sw.set_young(false);
        ptp.UpdateFlags(mapping.index, ptp.hw(mapping.index), sw);
        if (flush) {
          flush(mapping.va, mapping.ptp, ptp.hw(mapping.index).global());
        }
      }
      lru_->PushTail(LruList::kAnonActive, frame);
      counters_->lru_activations++;
      continue;
    }

    const std::optional<SwapSlotId> cached = zram_->CacheSlotOf(frame);
    if (mappings.empty()) {
      if (cached.has_value()) {
        // A swap-cache page nothing maps anymore (its last mapper exited
        // or swapped back out); dropping the cache entry frees the frame
        // and, if no swap PTE remains either, the slot.
        zram_->RemoveFromCache(*cached);
        counters_->swap_clean_drops++;
        return true;
      }
      // Kept alive by something other than PTEs or the swap cache (e.g. a
      // transient kernel reference); not ours to free.
      lru_->PushTail(LruList::kAnonInactive, frame);
      counters_->lru_rotations++;
      continue;
    }

    SwapSlotId slot;
    const bool reuse_slot = cached.has_value() && !dirty;
    if (reuse_slot) {
      // The compressed copy is still current: skip the store entirely.
      slot = *cached;
    } else {
      if (cached.has_value()) {
        // The cached association is stale (the page was dirtied in place,
        // possible for shared-anon mappings); sever it before storing.
        zram_->RemoveFromCache(*cached);
      }
      ZramStoreFailure why = ZramStoreFailure::kNone;
      const std::optional<SwapSlotId> stored =
          zram_->TryStore(phys_->frame(frame).content, &why);
      if (!stored.has_value()) {
        lru_->PushTail(LruList::kAnonInactive, frame);
        counters_->swap_out_failures++;
        // Pressure summaries want the split: a full compressed store is a
        // sizing problem, pool ENOMEM is the machine genuinely out of RAM.
        if (why == ZramStoreFailure::kStoreFull) {
          counters_->swap_out_store_full++;
        } else if (why == ZramStoreFailure::kPoolEnomem) {
          counters_->swap_out_pool_enomem++;
        }
        return false;  // store full or pool exhausted; retrying won't help
      }
      slot = *stored;
    }

    // Replace every PTE mapping the frame with the swap entry. One entry
    // in a shared PTP serves all its sharers, so this is one Set per rmap
    // entry, not per process.
    for (const RmapEntry& mapping : mappings) {
      PageTablePage& ptp = ptps_->Get(mapping.ptp);
      // The rmap entry is ground truth that a reference is held through
      // this site; the hardware word may have rotted (chaos injection), so
      // tolerate an invalid descriptor and swap the site out regardless.
      // A recount keeps Set's present-count bookkeeping consistent with
      // the (possibly flipped) validity bits.
      if (!ptp.hw(mapping.index).valid()) {
        ptp.RecountPresentForScrub();
      }
      const bool global =
          ptp.hw(mapping.index).valid() && ptp.hw(mapping.index).global();
      zram_->Ref(slot);
      ptp.Set(mapping.index, HwPte{}, LinuxPte::MakeSwap(slot));
      rmap_->Remove(frame, mapping.ptp, mapping.index);
      phys_->UnrefFrame(frame);
      if (flush) {
        flush(mapping.va, mapping.ptp, global);
      }
    }
    if (reuse_slot) {
      // The frame's last reference is the cache entry; dropping it frees
      // the frame without touching the (still valid) compressed copy.
      zram_->RemoveFromCache(slot);
      counters_->swap_clean_drops++;
    } else {
      zram_->Unref(slot);  // hand the creation reference over to the PTEs
    }
    counters_->swap_outs++;
    Tracer::Emit(tracer_, TraceEventType::kSwapOut, 0, frame, slot);
    return true;
  }
  return false;  // no evictable candidate this pass
}

uint32_t SwapManager::SwapOut(uint32_t target, const ReclaimFlushFn& flush) {
  uint32_t freed = 0;
  while (freed < target && SwapOutOne(flush)) {
    freed++;
  }
  return freed;
}

}  // namespace sat
