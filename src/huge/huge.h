// The translation-reach engine: khugepaged-style automatic large-page
// promotion (the complement the paper's Section 2.3.3 discussion gestures
// at — sharing reduces how many translations exist, large pages grow how
// much address space each one covers).
//
// huged is a background daemon, woken from the same kernel tick as ksmd
// and scrubd, that scans anonymous private regions for 64 KB-aligned runs
// of 16 resident 4 KB PTEs with uniform attributes and collapses each run
// into one ARM large-page descriptor (16 replicas naming the base frame),
// so a single main-TLB entry translates the whole block.
//
// Two collapse paths:
//
//   * In-place promotion — the 16 PTEs already map 16 physically
//     contiguous, naturally aligned frames (common right after a 64 KB
//     file block was COWed page-by-page, or after a migrate collapse was
//     split and left its frames in place). Rewriting small descriptors to
//     large replicas changes no translation (MappedFrameOf is invariant),
//     so this is legal even inside a *shared* (NEED_COPY) PTP: one
//     promotion serves every sharer. No frame refcount moves.
//
//   * Migrate collapse — the frames are scattered, so 16 contiguous
//     frames are allocated, content is copied, and the PTEs are rewritten
//     to large replicas over the new run. This mutates which frames are
//     mapped, so a shared PTP must be lazily unshared first (the KSM
//     precedent); an ENOMEM in either the unshare or the contiguous
//     allocation abandons the candidate with nothing half-collapsed.
//
// Run breakers: invalid PTEs, swap entries, the shared zero frame,
// non-anonymous frames, already-large PTEs, mixed permissions/global/XN,
// and KSM stable frames — unless `unmerge_ksm` policy is set, in which
// case a migrate collapse copies the stable content out (a deduplication
// unmerge, traded for reach).
//
// Demotion (splitting a large run back to 4 KB PTEs) is not the daemon's
// job: it happens synchronously in the VM layer when a partial munmap,
// mprotect, or COW write makes the block non-uniform (VmManager::
// SplitLargeBlock).

#ifndef SRC_HUGE_HUGE_H_
#define SRC_HUGE_HUGE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/arch/types.h"
#include "src/mem/phys_memory.h"
#include "src/stats/counters.h"
#include "src/vm/vm_manager.h"

namespace sat {

class MmStruct;
class Tracer;

// One address space the scan visits. `flush_tlb` is the owner's
// whole-ASID flush (handed to the lazy unshare); per-VA shootdowns go
// through the daemon-wide flush_va callback.
struct HugeScanTarget {
  MmStruct* mm = nullptr;
  uint32_t pid = 0;
  TlbFlushFn flush_tlb;
};

class HugeDaemon {
 public:
  HugeDaemon(PhysicalMemory* phys, VmManager* vm, KernelCounters* counters);

  HugeDaemon(const HugeDaemon&) = delete;
  HugeDaemon& operator=(const HugeDaemon&) = delete;

  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // KSM interaction policy: when true, a migrate collapse may copy KSM
  // stable frames out of a run (unmerging them); when false (default),
  // a stable frame breaks the run.
  void set_unmerge_ksm(bool v) { unmerge_ksm_ = v; }
  bool unmerge_ksm() const { return unmerge_ksm_; }

  // Per-VA TLB shootdown used after a run's descriptors change; the PTP
  // whose entries changed rides along so the kernel can derive the
  // shootdown cpumask from its sharer set. May be left unset in
  // page-table-only tests.
  void set_flush_va(std::function<void(VirtAddr, PtpId)> flush_va) {
    flush_va_ = std::move(flush_va);
  }

  // One full huged pass over the anonymous private regions of `targets`,
  // in order. Returns the number of 64 KB runs collapsed this pass.
  uint32_t ScanOnce(const std::vector<HugeScanTarget>& targets);

 private:
  // What ScanBlock decided about one 64 KB-aligned block.
  enum class RunClass : uint8_t {
    kIneligible = 0,  // broken run (or already large): leave it alone
    kContiguous,      // promotable in place, no frame movement
    kScattered,       // collapsible by migrating to a fresh contiguous run
  };

  // One candidate PTE's captured state.
  struct Replica {
    HwPte hw;
    LinuxPte sw;
    FrameNumber frame = 0;
    bool ksm_stable = false;
  };

  void ScanTarget(const HugeScanTarget& target, uint32_t* collapsed);

  // Examines the 16 PTEs of the block at `block_base` and fills
  // `replicas` on an eligible run. `count_scanned` feeds the
  // huge_pages_scanned counter (off for post-unshare re-validation).
  RunClass ClassifyBlock(MmStruct& mm, VirtAddr block_base, Replica* replicas,
                         bool count_scanned);

  // The two collapse paths. Both return true when the block ended up
  // large.
  bool CollapseInPlace(const HugeScanTarget& target, VirtAddr block_base);
  bool CollapseByMigration(const HugeScanTarget& target, VirtAddr block_base,
                           Replica* replicas);

  void FlushRun(VirtAddr block_base, PtpId ptp);

  PhysicalMemory* phys_;
  VmManager* vm_;
  KernelCounters* counters_;
  Tracer* tracer_ = nullptr;
  bool unmerge_ksm_ = false;
  std::function<void(VirtAddr, PtpId)> flush_va_;
};

}  // namespace sat

#endif  // SRC_HUGE_HUGE_H_
