#include "src/huge/huge.h"

#include <utility>

#include "src/arch/check.h"
#include "src/pt/page_table.h"
#include "src/pt/ptp.h"
#include "src/trace/trace.h"
#include "src/vm/mm.h"

namespace sat {

HugeDaemon::HugeDaemon(PhysicalMemory* phys, VmManager* vm,
                       KernelCounters* counters)
    : phys_(phys), vm_(vm), counters_(counters) {
  SAT_CHECK(phys_ != nullptr && vm_ != nullptr && counters_ != nullptr);
}

uint32_t HugeDaemon::ScanOnce(const std::vector<HugeScanTarget>& targets) {
  uint32_t collapsed = 0;
  for (const HugeScanTarget& target : targets) {
    ScanTarget(target, &collapsed);
  }
  counters_->huge_scans++;
  return collapsed;
}

void HugeDaemon::ScanTarget(const HugeScanTarget& target, uint32_t* collapsed) {
  SAT_CHECK(target.mm != nullptr);
  // Snapshot the candidate ranges before touching any PTE; collapsing
  // never mutates the region list, but scanning off a snapshot keeps
  // that a non-assumption.
  std::vector<std::pair<VirtAddr, VirtAddr>> ranges;
  target.mm->ForEachVma([&](const VmArea& vma) {
    // Anonymous private memory only. Stacks are excluded for the same
    // reason the paper excludes them from PTP sharing (Section 4.2.1):
    // they are modified immediately and constantly, so a collapsed
    // stack block would be split again almost at once.
    if (vma.kind == VmKind::kAnonPrivate && !vma.is_stack) {
      ranges.emplace_back(vma.start, vma.end);
    }
  });
  for (const auto& [start, end] : ranges) {
    // Only 64 KB-aligned blocks lying fully inside the region qualify.
    const uint64_t first =
        (static_cast<uint64_t>(start) + kLargePageSize - 1) &
        ~static_cast<uint64_t>(kLargePageSize - 1);
    for (uint64_t va = first; va + kLargePageSize <= end;
         va += kLargePageSize) {
      const auto block = static_cast<VirtAddr>(va);
      Replica replicas[kPtesPerLargePage];
      const RunClass cls =
          ClassifyBlock(*target.mm, block, replicas, /*count_scanned=*/true);
      bool done = false;
      if (cls == RunClass::kContiguous) {
        done = CollapseInPlace(target, block);
      } else if (cls == RunClass::kScattered) {
        done = CollapseByMigration(target, block, replicas);
      }
      if (done) {
        (*collapsed)++;
        counters_->huge_collapses++;
        Tracer::Emit(tracer_, TraceEventType::kHugeCollapse, target.pid,
                     VirtPageNumber(block),
                     cls == RunClass::kScattered ? 1 : 0);
      }
    }
  }
}

HugeDaemon::RunClass HugeDaemon::ClassifyBlock(MmStruct& mm,
                                               VirtAddr block_base,
                                               Replica* replicas,
                                               bool count_scanned) {
  PageTable& pt = mm.page_table();
  bool have_perm = false;
  PtePerm perm = PtePerm::kReadOnly;
  bool any_stable = false;
  for (uint32_t i = 0; i < kPtesPerLargePage; ++i) {
    const VirtAddr va = block_base + i * kPageSize;
    const auto ref = pt.FindPte(va);
    if (!ref.has_value()) {
      return RunClass::kIneligible;  // the slot has no PTP at all
    }
    if (count_scanned) {
      counters_->huge_pages_scanned++;
    }
    const HwPte hw = ref->ptp->hw(ref->index);
    const LinuxPte sw = ref->ptp->sw(ref->index);
    if (!hw.valid()) {
      // Not resident — including swap entries, which break the run until
      // their pages fault back in.
      return RunClass::kIneligible;
    }
    if (hw.large()) {
      return RunClass::kIneligible;  // already collapsed
    }
    const FrameNumber frame = MappedFrameOf(hw, ref->index);
    if (frame == phys_->zero_frame()) {
      return RunClass::kIneligible;  // untouched zero fill: nothing to gain
    }
    const PageFrame& meta = phys_->frame(frame);
    if (meta.kind != FrameKind::kAnon) {
      return RunClass::kIneligible;  // page-cache pages are not movable here
    }
    const bool stable = meta.ksm_stable;
    if (stable && !unmerge_ksm_) {
      // Deduplicated content wins by default; the unmerge_ksm policy
      // trades the sharing back for reach.
      return RunClass::kIneligible;
    }
    any_stable |= stable;
    if (i > 0 && (hw.global() != replicas[0].hw.global() ||
                  hw.executable() != replicas[0].hw.executable())) {
      return RunClass::kIneligible;
    }
    // Permission uniformity over the non-stable replicas. Stable frames
    // are always mapped read-only and regain the run's permission when
    // their content is copied out by the migrate path.
    if (!stable) {
      if (!have_perm) {
        perm = hw.perm();
        have_perm = true;
      } else if (hw.perm() != perm) {
        return RunClass::kIneligible;
      }
    }
    replicas[i] = Replica{hw, sw, frame, stable};
  }
  if (!any_stable &&
      (replicas[0].frame % kPtesPerLargePage) == 0) {
    bool contiguous = true;
    for (uint32_t i = 1; i < kPtesPerLargePage; ++i) {
      if (replicas[i].frame != replicas[0].frame + i) {
        contiguous = false;
        break;
      }
    }
    if (contiguous) {
      return RunClass::kContiguous;
    }
  }
  return RunClass::kScattered;
}

bool HugeDaemon::CollapseInPlace(const HugeScanTarget& target,
                                 VirtAddr block_base) {
  // A pure representation change: every sharer of the PTP keeps seeing
  // the same translations, so no unshare is needed — one promotion
  // serves all of them. Their cached 4 KB entries do go stale in the
  // sense that a better entry exists, so flush them for the reach win.
  PageTable& pt = target.mm->page_table();
  pt.PromoteRunInPlace(block_base);
  const auto ref = pt.FindPte(block_base);
  FlushRun(block_base, ref->ptp->id());
  return true;
}

bool HugeDaemon::CollapseByMigration(const HugeScanTarget& target,
                                     VirtAddr block_base, Replica* replicas) {
  MmStruct& mm = *target.mm;
  PageTable& pt = mm.page_table();
  if (pt.SlotNeedsCopy(block_base)) {
    // A shared PTP's entries are communal; migration repoints one
    // address space's PTEs, so the PTP must be privatized first (the
    // lazy unshare, exactly as KSM does it).
    Cycles cycles = 0;
    const std::optional<uint32_t> copied =
        vm_->UnshareIfNeeded(mm, block_base, target.flush_tlb, &cycles);
    if (!copied.has_value()) {
      // ENOMEM: TryUnshareSlot left the slot untouched, so abandoning
      // the candidate rolls the collapse back completely.
      counters_->huge_collapse_failures++;
      return false;
    }
    counters_->huge_unshares++;
    // The copy-referenced-only unshare ablation drops unreferenced
    // entries; re-validate the run against the private copy.
    switch (ClassifyBlock(mm, block_base, replicas, /*count_scanned=*/false)) {
      case RunClass::kIneligible:
        counters_->huge_collapse_failures++;
        return false;
      case RunClass::kContiguous:
        return CollapseInPlace(target, block_base);
      case RunClass::kScattered:
        break;
    }
  }

  const std::optional<FrameNumber> base =
      phys_->TryAllocContiguousFrames(kPtesPerLargePage, FrameKind::kAnon);
  if (!base.has_value()) {
    // Fragmentation or exhaustion: a clean abandon, nothing was touched.
    counters_->huge_collapse_failures++;
    return false;
  }

  PtePerm perm = PtePerm::kReadOnly;
  for (uint32_t i = 0; i < kPtesPerLargePage; ++i) {
    if (!replicas[i].ksm_stable) {
      perm = replicas[i].hw.perm();
      break;
    }
  }
  const bool global = replicas[0].hw.global();
  const bool executable = replicas[0].hw.executable();

  for (uint32_t i = 0; i < kPtesPerLargePage; ++i) {
    const VirtAddr va = block_base + i * kPageSize;
    const FrameNumber dst = *base + i;
    phys_->frame(dst).content = phys_->frame(replicas[i].frame).content;
    if (replicas[i].ksm_stable) {
      // Copying the content out of the stable frame is an unmerge: the
      // dedup is traded for reach (and the stable frame is freed if
      // this was its last mapping).
      counters_->huge_ksm_unmerges++;
    }
    LinuxPte sw = replicas[i].sw;
    sw.set_present(true);
    // The copy has no swap backing; it must be written out before it
    // can be dropped.
    sw.set_dirty(true);
    // SetPte references dst (large replica i maps base + i), releases
    // the scattered source frame, and fixes the rmap.
    pt.SetPte(va, HwPte::MakePage(*base, perm, global, executable,
                                  /*large=*/true),
              sw);
    phys_->UnrefFrame(dst);  // the allocator's ref; the PTE's keeps it live
  }
  counters_->huge_pages_migrated += kPtesPerLargePage;
  const auto ref = pt.FindPte(block_base);
  FlushRun(block_base, ref->ptp->id());
  return true;
}

void HugeDaemon::FlushRun(VirtAddr block_base, PtpId ptp) {
  if (!flush_va_) {
    return;
  }
  for (uint32_t i = 0; i < kPtesPerLargePage; ++i) {
    flush_va_(block_base + i * kPageSize, ptp);
  }
}

}  // namespace sat
