// The composable scenario engine's element interface (DESIGN.md 5k).
//
// A workload is no longer a hard-coded bench body: it is a graph of small
// WorkloadElements — ForkStorm, MemoryChurn, SwapThrash, LaunchReplay... —
// wired together by a Click-style text DSL (src/scenario/parser.h) and
// driven tick by tick against one simulated System. Elements are
// configured from named parameters, source elements spawn processes and
// push them to their downstream neighbours, and every element applies its
// per-tick behaviour to the processes it has adopted. All randomness
// flows through one seeded ScenarioRng per run, so a scenario is exactly
// as deterministic as the PR-4 driver contract requires: same graph, same
// seed, same shard — bit-identical counters at any --jobs value.

#ifndef SRC_SCENARIO_ELEMENT_H_
#define SRC_SCENARIO_ELEMENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/sat.h"
#include "src/proc/syscall.h"

namespace sat {

// ---------------------------------------------------------------------------
// Seeded randomness: a self-contained splitmix64/xorshift generator. No
// libm, no std::uniform_* (whose algorithms vary across standard
// libraries) — scenario results must reproduce bit-for-bit on any host.
// ---------------------------------------------------------------------------

class ScenarioRng {
 public:
  explicit ScenarioRng(uint64_t seed) : state_(seed ^ 0x9E3779B97F4A7C15ull) {}

  uint64_t Next64() {
    // splitmix64: passes BigCrush, two multiplies and three xors.
    state_ += 0x9E3779B97F4A7C15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n); n == 0 returns 0.
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next64() % n; }

  // Uniform in [0, 1) with 53 significant bits (exact IEEE arithmetic).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  // True with probability p (exact comparison of exact values).
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

// ---------------------------------------------------------------------------
// Errno-style outcomes, consistent with the PR-4 syscall surface: an
// element that rejects its configuration reports *which* errno and why,
// and the parser forwards it with the element's line in the .scn file.
// ---------------------------------------------------------------------------

struct ScenarioResult {
  Errno error = Errno::kOk;
  std::string message;

  bool ok() const { return error == Errno::kOk; }
  static ScenarioResult Ok() { return {}; }
  static ScenarioResult Err(Errno e, std::string m) {
    return {e, std::move(m)};
  }
};

// ---------------------------------------------------------------------------
// Named parameters, as parsed from `Kind(key value, key value)`.
// ---------------------------------------------------------------------------

struct ElementParam {
  std::string key;
  std::string value;
  bool quoted = false;  // value was a "quoted string" in the source
};

struct ElementParams {
  std::vector<ElementParam> items;

  const ElementParam* Find(std::string_view key) const {
    for (const ElementParam& p : items) {
      if (p.key == key) {
        return &p;
      }
    }
    return nullptr;
  }
};

// Typed parameter access for Configure(): every read marks its key as
// recognised, and Finish() rejects the leftovers — so a typo'd parameter
// fails the parse instead of silently running a default workload.
class ParamReader {
 public:
  explicit ParamReader(const ElementParams& params) : params_(params) {
    seen_.resize(params.items.size(), false);
  }

  uint64_t U64(std::string_view key, uint64_t fallback);
  double F64(std::string_view key, double fallback);
  bool Bool(std::string_view key, bool fallback);
  std::string Str(std::string_view key, std::string_view fallback);

  // kOk when every parameter was recognised and well-formed; kEinval
  // (with the offending key in the message) otherwise.
  ScenarioResult Finish() const;

 private:
  const ElementParam* Take(std::string_view key);
  void BadValue(const ElementParam& param, std::string_view expected);

  const ElementParams& params_;
  std::vector<bool> seen_;
  std::string first_error_;
};

// ---------------------------------------------------------------------------
// The per-run context handed to Tick()/Push(): the System under load, the
// seeded rng, the clock, this shard's slice of the population, and the
// central process registry that guarantees audit-clean teardown.
// ---------------------------------------------------------------------------

struct ScenarioStats {
  uint64_t processes_spawned = 0;
  uint64_t processes_exited = 0;
  uint64_t processes_lost = 0;  // OOM/oops-killed out from under an element
  uint64_t pages_touched = 0;
  uint64_t launches = 0;           // LaunchReplay full app executions
  uint64_t launches_incomplete = 0;
  uint64_t ipc_transactions = 0;
  uint32_t ticks_run = 0;
};

class ScenarioContext {
 public:
  ScenarioContext(System* system, uint64_t rng_seed, uint32_t shard_index,
                  uint32_t shard_count, double scale)
      : system_(system),
        rng_(rng_seed),
        shard_index_(shard_index),
        shard_count_(shard_count),
        scale_(scale) {}

  System& system() { return *system_; }
  Kernel& kernel() { return system_->kernel(); }
  ScenarioRng& rng() { return rng_; }
  ScenarioStats& stats() { return stats_; }
  const ScenarioStats& stats() const { return stats_; }

  uint32_t tick() const { return tick_; }
  void set_tick(uint32_t t) { tick_ = t; }
  uint32_t shard_index() const { return shard_index_; }
  uint32_t shard_count() const { return shard_count_; }

  // This shard's slice of a scenario-wide population: slices differ by at
  // most one and always sum to `total` across the shard set.
  uint64_t ShardShare(uint64_t total) const {
    const uint64_t base = total / shard_count_;
    const uint64_t extra = total % shard_count_;
    return base + (shard_index_ < extra ? 1 : 0);
  }

  // --smoke scaling: populations shrink by `scale`, but never to zero.
  uint64_t Scaled(uint64_t n) const {
    if (n == 0 || scale_ >= 1.0) {
      return n;
    }
    const uint64_t scaled =
        static_cast<uint64_t>(static_cast<double>(n) * scale_);
    return scaled == 0 ? 1 : scaled;
  }

  // Forks a process from the zygote, registers it for teardown, and
  // spreads it round-robin over the simulated cores. Returns nullptr when
  // the fork failed with ENOMEM even after reclaim and OOM-kills.
  Task* SpawnProcess(const std::string& name);

  // Forks from an arbitrary live parent (the ForkBomb tree); same
  // registration and core spreading as SpawnProcess.
  Task* SpawnChild(Task& parent, const std::string& name);

  // The shared touch-replay runner (one per shard, so every LaunchReplay
  // element draws distinct private-file ids from the same sequence).
  AppRunner& app_runner();

  // Exits `task` now (no-op if it already died — the OOM killer and the
  // oops machinery get there first sometimes). All scenario-driven exits
  // go through here so no task is ever exited twice.
  void ExitProcess(Task* task);

  // Exits every registered process that is still alive: the audit-clean
  // teardown step the runner performs after the last tick.
  void ExitAll();

  uint32_t live_processes() const;

 private:
  System* system_;
  ScenarioRng rng_;
  ScenarioStats stats_;
  uint32_t tick_ = 0;
  uint32_t shard_index_ = 0;
  uint32_t shard_count_ = 1;
  double scale_ = 1.0;
  uint32_t next_core_ = 0;
  std::vector<Task*> processes_;  // every task any element spawned
  std::unique_ptr<AppRunner> app_runner_;
};

// ---------------------------------------------------------------------------
// The element interface.
// ---------------------------------------------------------------------------

class WorkloadElement {
 public:
  virtual ~WorkloadElement() = default;

  // The registered kind ("ForkStorm", "MemoryChurn", ...).
  virtual std::string_view kind() const = 0;

  // Applies named parameters. Called exactly once, before the first Tick.
  virtual ScenarioResult Configure(const ElementParams& params) = 0;

  // One scheduler round. Elements tick in declaration order.
  virtual void Tick(ScenarioContext& ctx) = 0;

  // Receives a process pushed from an upstream element's output port.
  // The default adopts nothing and forwards downstream, so pass-through
  // chains compose; elements that adopt call Adopt() then forward.
  virtual void Push(ScenarioContext& ctx, Task* task) {
    PushDownstream(ctx, task);
  }

  // True when the element has no further work (sources: budget spent and
  // pool drained). The run stops early once every element is done.
  virtual bool Done(const ScenarioContext& ctx) const {
    (void)ctx;
    return true;
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void ConnectOutput(WorkloadElement* downstream) {
    outputs_.push_back(downstream);
  }
  const std::vector<WorkloadElement*>& outputs() const { return outputs_; }

 protected:
  void PushDownstream(ScenarioContext& ctx, Task* task) {
    for (WorkloadElement* out : outputs_) {
      out->Push(ctx, task);
    }
  }

  // Drops dead tasks from an element's adopted pool (the OOM killer, the
  // oops machinery, or an upstream element may have exited them).
  static void PruneDead(std::vector<Task*>* pool) {
    size_t kept = 0;
    for (Task* task : *pool) {
      if (task->alive) {
        (*pool)[kept++] = task;
      }
    }
    pool->resize(kept);
  }

 private:
  std::string name_;
  std::vector<WorkloadElement*> outputs_;
};

}  // namespace sat

#endif  // SRC_SCENARIO_ELEMENT_H_
