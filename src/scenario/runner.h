// The scenario runner: turns a parsed ScenarioGraph into a live element
// graph against one simulated System and drives it tick by tick.
//
// Sharding model (the PR-4 determinism contract): a scenario with
// `set shards N` becomes N independent driver jobs, each owning its own
// System and its own ScenarioContext seeded from
// DeriveJobSeed(base, scenario, shard). Scenario-wide populations are
// split with ShardShare, so the shard set always sums to the declared
// fleet, and because every job's record is emitted in submission order
// the merged output is bit-identical at any --jobs value.

#ifndef SRC_SCENARIO_RUNNER_H_
#define SRC_SCENARIO_RUNNER_H_

#include <cstdint>
#include <string>

#include "src/scenario/parser.h"
#include "src/scenario/registry.h"

namespace sat {

// Per-shard run parameters, all derived outside the runner (the bench
// harness owns seed derivation and smoke scaling).
struct ScenarioRunConfig {
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  uint64_t rng_seed = 42;
  // --smoke shrink factor applied to populations, rates, and ticks; 1.0
  // runs the scenario as written.
  double scale = 1.0;
};

struct ScenarioRunOutcome {
  ScenarioStats stats;
  // kOk, or why the run could not even start (an element kind missing
  // from the runtime registry, a Configure rejection).
  ScenarioResult status;
  // The full kernel invariant audit after teardown.
  bool audit_ok = false;
  uint64_t audit_checks = 0;
  std::string audit_report;  // violations, when !audit_ok

  bool ok() const { return status.ok() && audit_ok; }
};

// The SystemConfig a graph's `set` statements describe: the named base
// config, then the phys_mb/swap_mb/cores/nodes/shootdown/ksm/scrub/huge/
// seed overrides in file order.
SystemConfig ScenarioSystemConfig(const ScenarioGraph& graph);

// Arms the chaos knobs (`set chaos_pte p; set chaos_alloc p;`) on a
// built system's fault injector. A no-op for graphs without chaos.
void ApplyScenarioChaos(const ScenarioGraph& graph, System* system);

// The number of driver shards the graph asks for (`set shards`, min 1).
uint32_t ScenarioShardCount(const ScenarioGraph& graph);

// Instantiates the graph against `registry`, runs it for `set ticks`
// rounds (stopping early once every element reports Done), exits every
// spawned process, and audits the kernel. The System must have been
// built from ScenarioSystemConfig(graph) for the settings to mean what
// the scenario file says.
ScenarioRunOutcome RunScenarioOnSystem(System* system,
                                       const ScenarioGraph& graph,
                                       const ElementRegistry& registry,
                                       const ScenarioRunConfig& run);

}  // namespace sat

#endif  // SRC_SCENARIO_RUNNER_H_
