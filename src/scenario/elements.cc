// The built-in workload element library (DESIGN.md 5k).
//
// Each element is a small, composable piece of fleet behaviour:
//
//   SpawnStorm    app-server request storm: short-lived worker processes
//   ForkBomb      a uFork-style fork tree under a live-process cap
//   MemoryChurn   random read/write churn over per-process anon regions
//   BinderIpcLoop client/server ping-pong over the shared libbinder path
//   LaunchReplay  the paper's app-launch replays behind the element API
//   SwapThrash    sequential walks over working sets larger than DRAM
//   DiurnalLoad   a day-shaped (triangle-wave) spawn-rate modulator
//   NumaSweep     cross-node walkers feeding numad's placement policy
//
// Population parameters (count, procs, pairs, forks) are scenario-wide:
// each shard takes its ShardShare, so the shard set sums to the declared
// fleet no matter how it is split. Everything random draws from the
// shard's ScenarioRng — never from std:: distributions or the wall clock.

#include <algorithm>
#include <deque>
#include <string>
#include <vector>

#include "src/scenario/registry.h"

namespace sat {
namespace {

// Allocates and maps a scattered anonymous region for one process, the
// way real Android heaps land (2 MB-aligned spots, own PTP slots).
// Returns 0 when physical memory stayed exhausted after reclaim/OOM.
VirtAddr MapAnonRegion(ScenarioContext& ctx, Task& task, uint32_t pages,
                       bool mergeable, const std::string& name) {
  const auto spot = task.mm->FindFreeRangeAligned(
      pages * kPageSize, kPtpSpan, 0x10000000, 0xB0000000);
  if (!spot.has_value()) {
    return 0;
  }
  MmapRequest request;
  request.length = pages * kPageSize;
  request.prot = VmProt::ReadWrite();
  request.kind = VmKind::kAnonPrivate;
  request.fixed_address = *spot;
  request.mergeable = mergeable;
  request.name = name;
  return ctx.kernel().Mmap(task, request).value;
}

// A spawned process plus the tick it was born — the lifetime-managed
// pool SpawnStorm and DiurnalLoad share.
struct AgedProc {
  Task* task = nullptr;
  uint32_t born = 0;
};

void PruneDeadAged(std::vector<AgedProc>* pool) {
  size_t kept = 0;
  for (const AgedProc& entry : *pool) {
    if (entry.task->alive) {
      (*pool)[kept++] = entry;
    }
  }
  pool->resize(kept);
}

// ---------------------------------------------------------------------------
// SpawnStorm: a request storm of short-lived worker processes. Forks
// `rate` workers per tick from the zygote until `count` have run; each
// touches `touch_pages` anonymous pages, lives `lifetime` ticks, exits.
// ---------------------------------------------------------------------------

class SpawnStorm : public WorkloadElement {
 public:
  std::string_view kind() const override { return "SpawnStorm"; }

  ScenarioResult Configure(const ElementParams& params) override {
    ParamReader reader(params);
    count_ = reader.U64("count", 200);
    rate_ = reader.U64("rate", 20);
    lifetime_ = static_cast<uint32_t>(reader.U64("lifetime", 3));
    touch_pages_ = static_cast<uint32_t>(reader.U64("touch_pages", 16));
    return reader.Finish();
  }

  void Tick(ScenarioContext& ctx) override {
    if (!started_) {
      started_ = true;
      target_ = ctx.ShardShare(ctx.Scaled(count_));
    }
    PruneDeadAged(&pool_);
    uint64_t budget = ctx.Scaled(rate_);
    while (budget > 0 && spawned_ < target_) {
      budget--;
      Task* task = ctx.SpawnProcess(name() + "#" + std::to_string(spawned_));
      spawned_++;
      if (task == nullptr) {
        continue;  // fleet-scale runs tolerate ENOMEM forks
      }
      if (touch_pages_ > 0 && task->alive) {
        const VirtAddr base =
            MapAnonRegion(ctx, *task, touch_pages_, false, name() + ":heap");
        for (uint32_t p = 0; base != 0 && task->alive && p < touch_pages_;
             ++p) {
          ctx.kernel().WritePage(*task, base + p * kPageSize, ctx.rng().Next64());
          ctx.stats().pages_touched++;
        }
      }
      if (task->alive) {
        pool_.push_back(AgedProc{task, ctx.tick()});
        PushDownstream(ctx, task);
      }
    }
    // Retire workers whose lifetime expired (oldest first; the pool is in
    // birth order).
    size_t kept = 0;
    for (AgedProc& entry : pool_) {
      if (ctx.tick() >= entry.born + lifetime_) {
        ctx.ExitProcess(entry.task);
      } else {
        pool_[kept++] = entry;
      }
    }
    pool_.resize(kept);
  }

  bool Done(const ScenarioContext&) const override {
    return started_ && spawned_ >= target_ && pool_.empty();
  }

 private:
  uint64_t count_ = 0;
  uint64_t rate_ = 0;
  uint32_t lifetime_ = 0;
  uint32_t touch_pages_ = 0;
  bool started_ = false;
  uint64_t target_ = 0;
  uint64_t spawned_ = 0;
  std::vector<AgedProc> pool_;
};

// ---------------------------------------------------------------------------
// ForkBomb: a uFork-style fork tree. Spends a total budget of `forks`,
// `rate` per tick: each step takes the oldest live tree node, forks
// `fanout` children from it (each touching `touch_pages` pages), then
// exits the parent. The live tree never exceeds `cap` processes — the
// fleet analogue of RLIMIT_NPROC, and what keeps the 8-bit ASID space
// honest at 10k-fork scale.
// ---------------------------------------------------------------------------

class ForkBomb : public WorkloadElement {
 public:
  std::string_view kind() const override { return "ForkBomb"; }

  ScenarioResult Configure(const ElementParams& params) override {
    ParamReader reader(params);
    forks_ = reader.U64("forks", 1000);
    fanout_ = reader.U64("fanout", 2);
    rate_ = reader.U64("rate", 64);
    cap_ = reader.U64("cap", 48);
    touch_pages_ = static_cast<uint32_t>(reader.U64("touch_pages", 4));
    ScenarioResult result = reader.Finish();
    if (result.ok() && fanout_ == 0) {
      result = ScenarioResult::Err(Errno::kEinval, "fanout must be >= 1");
    }
    return result;
  }

  void Tick(ScenarioContext& ctx) override {
    if (!started_) {
      started_ = true;
      budget_ = ctx.ShardShare(ctx.Scaled(forks_));
    }
    PruneFrontier();
    uint64_t tick_budget = ctx.Scaled(rate_);
    while (tick_budget > 0 && budget_ > 0) {
      if (frontier_.empty()) {
        Task* root = ctx.SpawnProcess(name() + "#" + std::to_string(spawned_));
        spawned_++;
        budget_--;
        tick_budget--;
        if (root != nullptr) {
          TouchAndPush(ctx, root);
          frontier_.push_back(root);
        }
        continue;
      }
      Task* parent = frontier_.front();
      frontier_.pop_front();
      if (!parent->alive) {
        continue;
      }
      for (uint64_t i = 0; i < fanout_ && budget_ > 0 && tick_budget > 0;
           ++i) {
        Task* child =
            ctx.SpawnChild(*parent, name() + "#" + std::to_string(spawned_));
        spawned_++;
        budget_--;
        tick_budget--;
        if (child != nullptr && child->alive) {
          TouchAndPush(ctx, child);
          frontier_.push_back(child);
        }
      }
      ctx.ExitProcess(parent);
      while (frontier_.size() > cap_) {
        ctx.ExitProcess(frontier_.front());
        frontier_.pop_front();
      }
    }
    if (budget_ == 0) {
      // Budget spent: drain the remaining tree, `rate` exits per tick.
      uint64_t drain = ctx.Scaled(rate_);
      while (drain > 0 && !frontier_.empty()) {
        ctx.ExitProcess(frontier_.front());
        frontier_.pop_front();
        drain--;
      }
    }
  }

  bool Done(const ScenarioContext&) const override {
    return started_ && budget_ == 0 && frontier_.empty();
  }

 private:
  void TouchAndPush(ScenarioContext& ctx, Task* task) {
    if (touch_pages_ > 0) {
      const VirtAddr base =
          MapAnonRegion(ctx, *task, touch_pages_, false, name() + ":heap");
      for (uint32_t p = 0; base != 0 && task->alive && p < touch_pages_; ++p) {
        ctx.kernel().WritePage(*task, base + p * kPageSize, ctx.rng().Next64());
        ctx.stats().pages_touched++;
      }
    }
    if (task->alive) {
      PushDownstream(ctx, task);
    }
  }

  void PruneFrontier() {
    std::deque<Task*> kept;
    for (Task* task : frontier_) {
      if (task->alive) {
        kept.push_back(task);
      }
    }
    frontier_.swap(kept);
  }

  uint64_t forks_ = 0;
  uint64_t fanout_ = 0;
  uint64_t rate_ = 0;
  uint64_t cap_ = 0;
  uint32_t touch_pages_ = 0;
  bool started_ = false;
  uint64_t budget_ = 0;
  uint64_t spawned_ = 0;
  std::deque<Task*> frontier_;
};

// ---------------------------------------------------------------------------
// MemoryChurn: random churn over a per-process anonymous region. Adopts
// every process pushed to it (and forwards it on); with `procs` set it
// also sources its own fixed population. `dirty` of the `touches` per
// process per tick are writes drawn from `values` distinct contents —
// small value spaces give KSM something to merge.
// ---------------------------------------------------------------------------

class MemoryChurn : public WorkloadElement {
 public:
  std::string_view kind() const override { return "MemoryChurn"; }

  ScenarioResult Configure(const ElementParams& params) override {
    ParamReader reader(params);
    pages_ = static_cast<uint32_t>(reader.U64("pages", 256));
    touches_ = reader.U64("touches", 64);
    dirty_ = reader.F64("dirty", 0.5);
    values_ = reader.U64("values", 16);
    procs_ = reader.U64("procs", 0);
    mergeable_ = reader.Bool("mergeable", false);
    ScenarioResult result = reader.Finish();
    if (result.ok() && (dirty_ < 0.0 || dirty_ > 1.0)) {
      result = ScenarioResult::Err(Errno::kEinval, "dirty must be in [0, 1]");
    }
    if (result.ok() && pages_ == 0) {
      result = ScenarioResult::Err(Errno::kEinval, "pages must be >= 1");
    }
    return result;
  }

  void Push(ScenarioContext& ctx, Task* task) override {
    Adopt(ctx, task);
    PushDownstream(ctx, task);
  }

  void Tick(ScenarioContext& ctx) override {
    if (!started_) {
      started_ = true;
      const uint64_t own = ctx.ShardShare(ctx.Scaled(procs_));
      for (uint64_t i = 0; i < own; ++i) {
        Task* task = ctx.SpawnProcess(name() + "#" + std::to_string(i));
        if (task != nullptr) {
          Adopt(ctx, task);
          PushDownstream(ctx, task);
        }
      }
    }
    Prune();
    const uint64_t touches = ctx.Scaled(touches_);
    for (Entry& entry : pool_) {
      for (uint64_t t = 0; t < touches && entry.task->alive; ++t) {
        const VirtAddr va =
            entry.base +
            static_cast<uint32_t>(ctx.rng().Uniform(pages_)) * kPageSize;
        if (ctx.rng().Chance(dirty_)) {
          ctx.kernel().WritePage(*entry.task, va,
                                 ctx.rng().Uniform(values_ == 0 ? 1 : values_));
        } else {
          ctx.kernel().TouchPage(*entry.task, va, AccessType::kRead);
        }
        ctx.stats().pages_touched++;
      }
    }
  }

  bool Done(const ScenarioContext&) const override {
    // A self-sourced churn population has no natural end: run the
    // configured ticks. As a pure sink it never holds the run open.
    return procs_ == 0;
  }

 private:
  struct Entry {
    Task* task = nullptr;
    VirtAddr base = 0;
  };

  void Adopt(ScenarioContext& ctx, Task* task) {
    if (task == nullptr || !task->alive) {
      return;
    }
    const VirtAddr base =
        MapAnonRegion(ctx, *task, pages_, mergeable_, name() + ":churn");
    if (base == 0) {
      return;
    }
    pool_.push_back(Entry{task, base});
  }

  void Prune() {
    size_t kept = 0;
    for (const Entry& entry : pool_) {
      if (entry.task->alive) {
        pool_[kept++] = entry;
      }
    }
    pool_.resize(kept);
  }

  uint32_t pages_ = 0;
  uint64_t touches_ = 0;
  double dirty_ = 0.0;
  uint64_t values_ = 0;
  uint64_t procs_ = 0;
  bool mergeable_ = false;
  bool started_ = false;
  std::vector<Entry> pool_;
};

// ---------------------------------------------------------------------------
// BinderIpcLoop: `pairs` client/server process pairs ping-ponging
// `transactions` times per tick over the zygote-preloaded call path (the
// Section 4.2.4 shape: both sides pinned to one core, two context
// switches per transaction, shared libbinder pages at identical VAs).
// ---------------------------------------------------------------------------

class BinderIpcLoop : public WorkloadElement {
 public:
  std::string_view kind() const override { return "BinderIpcLoop"; }

  ScenarioResult Configure(const ElementParams& params) override {
    ParamReader reader(params);
    pairs_ = reader.U64("pairs", 2);
    transactions_ = reader.U64("transactions", 25);
    shared_pages_ = static_cast<uint32_t>(reader.U64("shared_pages", 32));
    own_pages_ = static_cast<uint32_t>(reader.U64("own_pages", 12));
    hop_pages_ = static_cast<uint32_t>(reader.U64("hop_pages", 6));
    return reader.Finish();
  }

  void Tick(ScenarioContext& ctx) override {
    if (!started_) {
      started_ = true;
      Setup(ctx);
    }
    Prune();
    const uint64_t transactions = ctx.Scaled(transactions_);
    for (Pair& pair : pairs_live_) {
      const uint32_t core = pair.client.task->last_core;
      for (uint64_t t = 0; t < transactions && pair.client.task->alive &&
                           pair.server.task->alive;
           ++t) {
        ctx.kernel().ScheduleTo(*pair.client.task, core);
        Hop(ctx, pair.client, pair.shared);
        if (!pair.client.task->alive || !pair.server.task->alive) {
          break;
        }
        ctx.kernel().ScheduleTo(*pair.server.task, core);
        Hop(ctx, pair.server, pair.shared);
        ctx.stats().ipc_transactions++;
      }
    }
  }

  // A perpetual driver: the run length is the scenario's `ticks`.
  bool Done(const ScenarioContext&) const override {
    return pairs_live_.empty() && started_;
  }

 private:
  // One endpoint: its process, a parcel buffer, and its private code —
  // the .odex pages that feel the TLB capacity pressure (the shared
  // zygote call path rides 1MB sections, so it is nearly free of
  // per-page iTLB traffic; the private code is not).
  struct Side {
    Task* task = nullptr;
    VirtAddr parcel = 0;
    std::vector<VirtAddr> code;
    size_t cursor = 0;
  };
  struct Pair {
    Side client;
    Side server;
    std::vector<VirtAddr> shared;
  };

  void Setup(ScenarioContext& ctx) {
    const uint64_t want = ctx.ShardShare(ctx.Scaled(pairs_));
    const AppFootprint& boot = ctx.system().android().zygote_boot_footprint();
    LibraryCatalog& catalog = ctx.system().android().catalog();
    DynamicLoader& loader = ctx.system().android().loader();
    for (uint64_t i = 0; i < want; ++i) {
      Pair pair;
      pair.client.task =
          ctx.SpawnProcess(name() + ":client#" + std::to_string(i));
      pair.server.task =
          ctx.SpawnProcess(name() + ":server#" + std::to_string(i));
      if (pair.client.task == nullptr || pair.server.task == nullptr) {
        continue;
      }
      // The shared call path: a slice of the zygote's boot footprint,
      // identical VAs in both processes. Different pairs use different
      // slices so the fleet touches more of libbinder/libc.
      const uint32_t avail = static_cast<uint32_t>(boot.pages.size());
      const uint32_t base_index =
          avail == 0 ? 0
                     : static_cast<uint32_t>(ctx.rng().Uniform(avail));
      for (uint32_t p = 0; p < shared_pages_ && avail > 0; ++p) {
        const TouchedPage& page = boot.pages[(base_index + p) % avail];
        pair.shared.push_back(
            ctx.system().android().CodePageVa(page.lib, page.page_index));
      }
      // Private code, the binder microbenchmark's layout: the client's
      // hot functions at a coarse 8-page stride (section-padded .text),
      // the server's handler a tight 2-page strided loop. These are the
      // per-ASID TLB entries a context switch puts at risk.
      if (own_pages_ > 0) {
        const LibraryId client_lib = catalog.Register(
            name() + ":client#" + std::to_string(i) + ".odex",
            CodeCategory::kPrivateCode, std::max(own_pages_ * 8, 8u), 8);
        const LibraryId server_lib = catalog.Register(
            name() + ":server#" + std::to_string(i) + ".odex",
            CodeCategory::kPrivateCode, std::max(own_pages_ * 2 + 2, 8u), 8);
        const MappedLibrary client_code =
            loader.MapAppLibrary(*pair.client.task, client_lib);
        const MappedLibrary server_code =
            loader.MapAppLibrary(*pair.server.task, server_lib);
        for (uint32_t p = 0; p < own_pages_; ++p) {
          pair.client.code.push_back(client_code.code_base +
                                     p * 8 * kPageSize);
          pair.server.code.push_back(server_code.code_base +
                                     (2 * p + 1) * kPageSize);
        }
      }
      pair.client.parcel = MapAnonRegion(ctx, *pair.client.task,
                                         kParcelPages, false,
                                         name() + ":parcel");
      pair.server.parcel = MapAnonRegion(ctx, *pair.server.task,
                                         kParcelPages, false,
                                         name() + ":parcel");
      if (pair.client.task->alive && pair.server.task->alive) {
        pairs_live_.push_back(std::move(pair));
        PushDownstream(ctx, pairs_live_.back().client.task);
        PushDownstream(ctx, pairs_live_.back().server.task);
      }
    }
  }

  // One binder hop through the core model: instruction fetches over the
  // shared call path and a sliding window of the endpoint's private
  // code, plus a parcel write. Fetches fault through the kernel's abort
  // handler, so no explicit TouchPage is needed.
  void Hop(ScenarioContext& ctx, Side& side, const std::vector<VirtAddr>& shared) {
    Task& task = *side.task;
    Core& core = ctx.kernel().core(task.last_core);
    for (uint32_t p = 0; p < hop_pages_ && task.alive && !shared.empty();
         ++p) {
      const VirtAddr va = shared[ctx.rng().Uniform(shared.size())];
      core.FetchBurst(va, /*burst_len=*/4);
      ctx.stats().pages_touched++;
    }
    for (uint32_t p = 0; p < hop_pages_ && task.alive && !side.code.empty();
         ++p) {
      const VirtAddr va = side.code[side.cursor % side.code.size()];
      side.cursor++;
      core.FetchBurst(va, /*burst_len=*/4);
      ctx.stats().pages_touched++;
    }
    if (side.parcel != 0 && task.alive) {
      const VirtAddr va =
          side.parcel +
          static_cast<uint32_t>(ctx.rng().Uniform(kParcelPages)) * kPageSize;
      ctx.kernel().WritePage(task, va, ctx.rng().Next64());
      core.Load(va);
      ctx.stats().pages_touched++;
    }
  }

  void Prune() {
    size_t kept = 0;
    for (size_t i = 0; i < pairs_live_.size(); ++i) {
      if (pairs_live_[i].client.task->alive &&
          pairs_live_[i].server.task->alive) {
        if (kept != i) {
          pairs_live_[kept] = std::move(pairs_live_[i]);
        }
        kept++;
      }
    }
    pairs_live_.resize(kept);
  }

  static constexpr uint32_t kParcelPages = 16;

  uint64_t pairs_ = 0;
  uint64_t transactions_ = 0;
  uint32_t shared_pages_ = 0;
  uint32_t own_pages_ = 0;
  uint32_t hop_pages_ = 0;
  bool started_ = false;
  std::vector<Pair> pairs_live_;
};

// ---------------------------------------------------------------------------
// LaunchReplay: the pre-existing app-launch replay machinery
// (WorkloadFactory + AppRunner) behind the element API. Launches `rate`
// apps per tick, `count` in total, cycling through the paper's 11-app
// suite (or one named app); every launch is a complete fork -> map ->
// replay -> exit execution with a fresh footprint seed.
// ---------------------------------------------------------------------------

class LaunchReplay : public WorkloadElement {
 public:
  std::string_view kind() const override { return "LaunchReplay"; }

  ScenarioResult Configure(const ElementParams& params) override {
    ParamReader reader(params);
    app_ = reader.Str("app", "paper");
    count_ = reader.U64("count", 20);
    rate_ = reader.U64("rate", 2);
    ScenarioResult result = reader.Finish();
    if (!result.ok()) {
      return result;
    }
    profiles_ = AppProfile::PaperBenchmarks();
    if (app_ != "paper") {
      bool known = false;
      for (const AppProfile& profile : profiles_) {
        if (profile.name == app_) {
          profiles_ = {profile};
          known = true;
          break;
        }
      }
      if (!known) {
        return ScenarioResult::Err(
            Errno::kEfault,
            "unknown app '" + app_ + "' (use \"paper\" or a suite app name)");
      }
    }
    return result;
  }

  void Tick(ScenarioContext& ctx) override {
    if (!started_) {
      started_ = true;
      target_ = ctx.ShardShare(ctx.Scaled(count_));
    }
    uint64_t budget = ctx.Scaled(rate_);
    while (budget > 0 && launched_ < target_) {
      budget--;
      AppProfile profile = profiles_[launched_ % profiles_.size()];
      // Every launch gets its own footprint variation, like a fleet of
      // distinct users running distinct sessions of the same app.
      profile.seed = ctx.rng().Next64();
      const AppFootprint footprint =
          ctx.system().workload().Generate(profile);
      const AppRunStats run =
          ctx.app_runner().Run(footprint, /*exit_after=*/true);
      launched_++;
      ctx.stats().launches++;
      if (!run.completed) {
        ctx.stats().launches_incomplete++;
      }
    }
  }

  bool Done(const ScenarioContext&) const override {
    return started_ && launched_ >= target_;
  }

 private:
  std::string app_;
  uint64_t count_ = 0;
  uint64_t rate_ = 0;
  std::vector<AppProfile> profiles_;
  bool started_ = false;
  uint64_t target_ = 0;
  uint64_t launched_ = 0;
};

// ---------------------------------------------------------------------------
// SwapThrash: sequential walks over per-process working sets sized past
// what DRAM can hold (pair with `set phys_mb` / `set swap_mb`). Each
// page gets a distinct content stamp, so the zram store sees realistic,
// poorly-deduplicating data while the LRU cycles.
// ---------------------------------------------------------------------------

class SwapThrash : public WorkloadElement {
 public:
  std::string_view kind() const override { return "SwapThrash"; }

  ScenarioResult Configure(const ElementParams& params) override {
    ParamReader reader(params);
    pages_ = static_cast<uint32_t>(reader.U64("pages", 1024));
    touches_ = reader.U64("touches", 256);
    stride_ = static_cast<uint32_t>(reader.U64("stride", 1));
    procs_ = reader.U64("procs", 0);
    ScenarioResult result = reader.Finish();
    if (result.ok() && (pages_ == 0 || stride_ == 0)) {
      result =
          ScenarioResult::Err(Errno::kEinval, "pages and stride must be >= 1");
    }
    return result;
  }

  void Push(ScenarioContext& ctx, Task* task) override {
    Adopt(ctx, task);
    PushDownstream(ctx, task);
  }

  void Tick(ScenarioContext& ctx) override {
    if (!started_) {
      started_ = true;
      const uint64_t own = ctx.ShardShare(ctx.Scaled(procs_));
      for (uint64_t i = 0; i < own; ++i) {
        Task* task = ctx.SpawnProcess(name() + "#" + std::to_string(i));
        if (task != nullptr) {
          Adopt(ctx, task);
          PushDownstream(ctx, task);
        }
      }
    }
    Prune();
    const uint64_t touches = ctx.Scaled(touches_);
    for (Entry& entry : pool_) {
      for (uint64_t t = 0; t < touches && entry.task->alive; ++t) {
        const uint32_t page = entry.cursor % pages_;
        entry.cursor += stride_;
        // Content = the page's index: stable across revisits (clean
        // swap-cache hits possible), distinct across pages (no trivial
        // KSM merging).
        ctx.kernel().WritePage(*entry.task, entry.base + page * kPageSize,
                               0x5A700000ull + page);
        ctx.stats().pages_touched++;
      }
    }
  }

  bool Done(const ScenarioContext&) const override { return procs_ == 0; }

 private:
  struct Entry {
    Task* task = nullptr;
    VirtAddr base = 0;
    uint32_t cursor = 0;
  };

  void Adopt(ScenarioContext& ctx, Task* task) {
    if (task == nullptr || !task->alive) {
      return;
    }
    const VirtAddr base =
        MapAnonRegion(ctx, *task, pages_, false, name() + ":thrash");
    if (base == 0) {
      return;
    }
    pool_.push_back(Entry{task, base, 0});
  }

  void Prune() {
    size_t kept = 0;
    for (const Entry& entry : pool_) {
      if (entry.task->alive) {
        pool_[kept++] = entry;
      }
    }
    pool_.resize(kept);
  }

  uint32_t pages_ = 0;
  uint64_t touches_ = 0;
  uint32_t stride_ = 0;
  uint64_t procs_ = 0;
  bool started_ = false;
  std::vector<Entry> pool_;
};

// ---------------------------------------------------------------------------
// DiurnalLoad: a day-shaped spawn source. The per-tick spawn rate is a
// triangle wave from `trough` to `peak` over `period` ticks (integer
// arithmetic only — no libm, bit-identical everywhere). Spawned
// processes touch a few pages, get pushed downstream, and exit after
// `lifetime` ticks, so downstream elements see the population swell and
// shrink the way a phone fleet's evening does.
// ---------------------------------------------------------------------------

class DiurnalLoad : public WorkloadElement {
 public:
  std::string_view kind() const override { return "DiurnalLoad"; }

  ScenarioResult Configure(const ElementParams& params) override {
    ParamReader reader(params);
    period_ = static_cast<uint32_t>(reader.U64("period", 48));
    peak_ = reader.U64("peak", 8);
    trough_ = reader.U64("trough", 1);
    lifetime_ = static_cast<uint32_t>(reader.U64("lifetime", 6));
    touch_pages_ = static_cast<uint32_t>(reader.U64("touch_pages", 8));
    count_ = reader.U64("count", 0);  // 0 = unbounded (run the ticks out)
    ScenarioResult result = reader.Finish();
    if (result.ok() && period_ < 2) {
      result = ScenarioResult::Err(Errno::kEinval, "period must be >= 2");
    }
    if (result.ok() && peak_ < trough_) {
      result = ScenarioResult::Err(Errno::kEinval, "peak must be >= trough");
    }
    return result;
  }

  void Tick(ScenarioContext& ctx) override {
    if (!started_) {
      started_ = true;
      target_ = count_ == 0 ? 0 : ctx.ShardShare(ctx.Scaled(count_));
    }
    PruneDeadAged(&pool_);
    uint64_t rate = RateAt(ctx.tick());
    rate = ctx.Scaled(rate);
    for (uint64_t i = 0; i < rate; ++i) {
      if (count_ != 0 && spawned_ >= target_) {
        break;
      }
      Task* task = ctx.SpawnProcess(name() + "#" + std::to_string(spawned_));
      spawned_++;
      if (task == nullptr) {
        continue;
      }
      if (touch_pages_ > 0) {
        const VirtAddr base =
            MapAnonRegion(ctx, *task, touch_pages_, false, name() + ":heap");
        for (uint32_t p = 0; base != 0 && task->alive && p < touch_pages_;
             ++p) {
          ctx.kernel().WritePage(*task, base + p * kPageSize,
                                 ctx.rng().Next64());
          ctx.stats().pages_touched++;
        }
      }
      if (task->alive) {
        pool_.push_back(AgedProc{task, ctx.tick()});
        PushDownstream(ctx, task);
      }
    }
    size_t kept = 0;
    for (AgedProc& entry : pool_) {
      if (ctx.tick() >= entry.born + lifetime_) {
        ctx.ExitProcess(entry.task);
      } else {
        pool_[kept++] = entry;
      }
    }
    pool_.resize(kept);
  }

  bool Done(const ScenarioContext&) const override {
    if (count_ == 0) {
      return false;  // perpetual: the scenario's `ticks` bounds the run
    }
    return started_ && spawned_ >= target_ && pool_.empty();
  }

 private:
  uint64_t RateAt(uint32_t tick) const {
    const uint32_t phase = tick % period_;
    const uint32_t half = period_ / 2;
    const uint32_t tri = phase <= half ? phase : period_ - phase;
    return trough_ + ((peak_ - trough_) * tri) / half;
  }

  uint32_t period_ = 0;
  uint64_t peak_ = 0;
  uint64_t trough_ = 0;
  uint32_t lifetime_ = 0;
  uint32_t touch_pages_ = 0;
  uint64_t count_ = 0;
  bool started_ = false;
  uint64_t target_ = 0;
  uint64_t spawned_ = 0;
  std::vector<AgedProc> pool_;
};

// ---------------------------------------------------------------------------
// NumaSweep: `procs` resident walkers spread over every core — and so,
// on a multi-node machine, every NUMA node — each sweeping a window of
// the zygote's preloaded shared code plus a private first-touch anon
// heap. The cross-node walk pattern is exactly what feeds numad's
// per-PTP statistics; every `numad_every` ticks the element runs an
// explicit numad pass, so replication or migration (`set pt_placement
// replicate`) happens mid-scenario with reclaim, chaos, and scrubd all
// interfering. On a single-node machine the pass is a no-op and the
// element degrades to a plain shared-code walker.
// ---------------------------------------------------------------------------

class NumaSweep : public WorkloadElement {
 public:
  std::string_view kind() const override { return "NumaSweep"; }

  ScenarioResult Configure(const ElementParams& params) override {
    ParamReader reader(params);
    procs_ = reader.U64("procs", 8);
    shared_pages_ = static_cast<uint32_t>(reader.U64("shared_pages", 12));
    anon_pages_ = static_cast<uint32_t>(reader.U64("anon_pages", 16));
    touches_ = reader.U64("touches", 24);
    numad_every_ = static_cast<uint32_t>(reader.U64("numad_every", 4));
    return reader.Finish();
  }

  void Push(ScenarioContext& ctx, Task* task) override {
    Adopt(ctx, task);
    PushDownstream(ctx, task);
  }

  void Tick(ScenarioContext& ctx) override {
    if (!started_) {
      started_ = true;
      const uint64_t own = ctx.ShardShare(ctx.Scaled(procs_));
      for (uint64_t i = 0; i < own; ++i) {
        Task* task = ctx.SpawnProcess(name() + "#" + std::to_string(i));
        if (task != nullptr) {
          Adopt(ctx, task);
          PushDownstream(ctx, task);
        }
      }
    }
    Prune();
    const AppFootprint& boot = ctx.system().android().zygote_boot_footprint();
    const uint32_t avail = static_cast<uint32_t>(boot.pages.size());
    const uint64_t touches = ctx.Scaled(touches_);
    for (Entry& entry : pool_) {
      // Walk from the process's own core so the walk's node — and the
      // remote/local split numad sees — is deterministic.
      ctx.kernel().ScheduleTo(*entry.task, entry.task->last_core);
      for (uint64_t t = 0; t < touches && entry.task->alive; ++t) {
        if (avail > 0 && (anon_pages_ == 0 || entry.base == 0 || t % 2 == 0)) {
          const TouchedPage& page =
              boot.pages[(entry.cursor++) % std::min(avail, shared_pages_)];
          ctx.kernel().TouchPage(
              *entry.task,
              ctx.system().android().CodePageVa(page.lib, page.page_index),
              AccessType::kExecute);
        } else if (entry.base != 0) {
          ctx.kernel().WritePage(
              *entry.task,
              entry.base + static_cast<uint32_t>(
                               ctx.rng().Uniform(anon_pages_)) * kPageSize,
              ctx.rng().Next64());
        }
        ctx.stats().pages_touched++;
      }
    }
    if (numad_every_ > 0 && (ctx.tick() + 1) % numad_every_ == 0) {
      ctx.kernel().RunNumadPass();
    }
  }

  bool Done(const ScenarioContext&) const override { return procs_ == 0; }

 private:
  struct Entry {
    Task* task = nullptr;
    VirtAddr base = 0;
    uint32_t cursor = 0;
  };

  void Adopt(ScenarioContext& ctx, Task* task) {
    if (task == nullptr || !task->alive) {
      return;
    }
    VirtAddr base = 0;
    if (anon_pages_ > 0) {
      base = MapAnonRegion(ctx, *task, anon_pages_, false, name() + ":heap");
    }
    pool_.push_back(Entry{task, base, 0});
  }

  void Prune() {
    size_t kept = 0;
    for (const Entry& entry : pool_) {
      if (entry.task->alive) {
        pool_[kept++] = entry;
      }
    }
    pool_.resize(kept);
  }

  uint64_t procs_ = 0;
  uint32_t shared_pages_ = 0;
  uint32_t anon_pages_ = 0;
  uint64_t touches_ = 0;
  uint32_t numad_every_ = 0;
  bool started_ = false;
  std::vector<Entry> pool_;
};

}  // namespace

void RegisterBuiltinElements(ElementRegistry* registry) {
  registry->Register("SpawnStorm",
                     [] { return std::make_unique<SpawnStorm>(); });
  registry->Register("ForkBomb", [] { return std::make_unique<ForkBomb>(); });
  registry->Register("MemoryChurn",
                     [] { return std::make_unique<MemoryChurn>(); });
  registry->Register("BinderIpcLoop",
                     [] { return std::make_unique<BinderIpcLoop>(); });
  registry->Register("LaunchReplay",
                     [] { return std::make_unique<LaunchReplay>(); });
  registry->Register("SwapThrash",
                     [] { return std::make_unique<SwapThrash>(); });
  registry->Register("DiurnalLoad",
                     [] { return std::make_unique<DiurnalLoad>(); });
  registry->Register("NumaSweep",
                     [] { return std::make_unique<NumaSweep>(); });
}

}  // namespace sat
