// The element registry: kind name -> factory. The built-in library
// (ForkBomb, SpawnStorm, MemoryChurn, BinderIpcLoop, LaunchReplay,
// SwapThrash, DiurnalLoad, NumaSweep) registers itself into Default();
// tests and
// future subsystems add their own kinds the same way, and every consumer
// of the DSL — the parser's validation, the runner's instantiation —
// resolves kinds through one of these tables.

#ifndef SRC_SCENARIO_REGISTRY_H_
#define SRC_SCENARIO_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/scenario/element.h"

namespace sat {

class ElementRegistry {
 public:
  using Factory = std::function<std::unique_ptr<WorkloadElement>()>;

  // Registers a kind; a later registration of the same name wins (tests
  // override built-ins).
  void Register(std::string kind, Factory factory);

  // A fresh, unconfigured element; nullptr for an unknown kind.
  std::unique_ptr<WorkloadElement> Create(std::string_view kind) const;

  bool Has(std::string_view kind) const;

  // "BinderIpcLoop, DiurnalLoad, ..." — for error messages.
  std::string KindList() const;

  // The process-wide registry with every built-in element registered.
  static const ElementRegistry& Default();

 private:
  struct Entry {
    std::string kind;
    Factory factory;
  };
  std::vector<Entry> entries_;
};

// Registers the built-in element library into `registry` (what Default()
// runs once); exposed so tests can compose custom registries.
void RegisterBuiltinElements(ElementRegistry* registry);

}  // namespace sat

#endif  // SRC_SCENARIO_REGISTRY_H_
