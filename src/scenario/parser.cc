#include "src/scenario/parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/scenario/registry.h"

namespace sat {

namespace {

// The run-level knobs a `set` statement may touch, with the value shape
// the runner expects. Everything else is a parse error — a typo'd knob
// must not silently run a default fleet.
struct SettingSpec {
  std::string_view key;
  enum class Kind { kU64, kF64, kBool, kConfigName, kWord } kind;
};

constexpr SettingSpec kKnownSettings[] = {
    {"config", SettingSpec::Kind::kConfigName},  // named registry entry
    {"ticks", SettingSpec::Kind::kU64},      // scheduler rounds
    {"shards", SettingSpec::Kind::kU64},     // driver jobs the run splits into
    {"seed", SettingSpec::Kind::kU64},       // base seed (config default else)
    {"phys_mb", SettingSpec::Kind::kU64},    // DRAM override
    {"swap_mb", SettingSpec::Kind::kU64},    // zram override
    {"cores", SettingSpec::Kind::kU64},      // simulated cores
    {"nodes", SettingSpec::Kind::kU64},      // NUMA nodes
    {"shootdown", SettingSpec::Kind::kWord},  // immediate | batched
    {"pt_placement", SettingSpec::Kind::kWord},  // local | replicate | migrate
    {"ksm", SettingSpec::Kind::kBool},
    {"scrub", SettingSpec::Kind::kBool},
    {"huge", SettingSpec::Kind::kBool},
    {"chaos_pte", SettingSpec::Kind::kF64},    // P(bit-flip) per touch
    {"chaos_alloc", SettingSpec::Kind::kF64},  // P(alloc failure) per attempt
};

bool IsWordChar(char c, char next) {
  if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
    return true;
  }
  // '-' belongs to words ("shared-ptp-tlb", "-0.5") unless it starts the
  // '->' arrow.
  return c == '-' && next != '>';
}

bool ParsesAsU64(const std::string& text) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  std::strtoull(text.c_str(), &end, 10);
  return errno == 0 && end == text.c_str() + text.size();
}

bool ParsesAsF64(const std::string& text) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  std::strtod(text.c_str(), &end);
  return errno == 0 && end == text.c_str() + text.size();
}

struct Token {
  enum class Type { kWord, kString, kColonColon, kArrow, kLparen, kRparen,
                    kComma, kSemi, kEnd } type = Type::kEnd;
  std::string text;
  bool quoted = false;
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  // Scans the next token; false (with the error fields set) on a lexical
  // error (unterminated string, stray character).
  bool Next(Token* token, std::string* error) {
    SkipSpaceAndComments();
    token->line = line_;
    token->column = column_;
    token->quoted = false;
    token->text.clear();
    if (pos_ >= text_.size()) {
      token->type = Token::Type::kEnd;
      return true;
    }
    const char c = text_[pos_];
    if (c == '"') {
      token->type = Token::Type::kString;
      token->quoted = true;
      Advance();
      while (pos_ < text_.size() && text_[pos_] != '"') {
        char ch = text_[pos_];
        if (ch == '\n') {
          *error = "unterminated string";
          return false;
        }
        if (ch == '\\' && pos_ + 1 < text_.size()) {
          Advance();
          ch = text_[pos_];
        }
        token->text += ch;
        Advance();
      }
      if (pos_ >= text_.size()) {
        *error = "unterminated string";
        return false;
      }
      Advance();  // closing quote
      return true;
    }
    if (c == ':' && Peek(1) == ':') {
      token->type = Token::Type::kColonColon;
      Advance();
      Advance();
      return true;
    }
    if (c == '-' && Peek(1) == '>') {
      token->type = Token::Type::kArrow;
      Advance();
      Advance();
      return true;
    }
    if (c == '(') {
      token->type = Token::Type::kLparen;
      Advance();
      return true;
    }
    if (c == ')') {
      token->type = Token::Type::kRparen;
      Advance();
      return true;
    }
    if (c == ',') {
      token->type = Token::Type::kComma;
      Advance();
      return true;
    }
    if (c == ';') {
      token->type = Token::Type::kSemi;
      Advance();
      return true;
    }
    if (IsWordChar(c, Peek(1))) {
      token->type = Token::Type::kWord;
      while (pos_ < text_.size() && IsWordChar(text_[pos_], Peek(1))) {
        token->text += text_[pos_];
        Advance();
      }
      return true;
    }
    *error = std::string("unexpected character '") + c + "'";
    return false;
  }

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  void Advance() {
    if (text_[pos_] == '\n') {
      line_++;
      column_ = 1;
    } else {
      column_++;
    }
    pos_++;
  }
  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#' || (c == '/' && Peek(1) == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          Advance();
        }
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

// Recursive-descent parser over the token stream. Errors carry the
// position of the token that broke the grammar.
class Parser {
 public:
  Parser(std::string_view text, std::string name,
         const ElementRegistry* registry)
      : lexer_(text), registry_(registry) {
    result_.graph.name = std::move(name);
  }

  ScenarioParseResult Run() {
    if (!NextToken()) {
      return result_;
    }
    while (token_.type != Token::Type::kEnd) {
      if (!Statement()) {
        return result_;
      }
    }
    Validate();
    return result_;
  }

 private:
  bool Fail(Errno error, const std::string& message) {
    return FailAt(error, message, token_.line, token_.column);
  }
  bool FailAt(Errno error, const std::string& message, int line, int column) {
    if (result_.ok()) {
      result_.error = error;
      result_.message = message;
      result_.line = line;
      result_.column = column;
    }
    return false;
  }

  bool NextToken() {
    std::string error;
    if (!lexer_.Next(&token_, &error)) {
      return FailAt(Errno::kEinval, error, lexer_.line(), lexer_.column());
    }
    return true;
  }

  bool Expect(Token::Type type, const char* what) {
    if (token_.type != type) {
      return Fail(Errno::kEinval, std::string("expected ") + what);
    }
    return NextToken();
  }

  // statement := 'set' word value ';'
  //            | word '::' word '(' params ')' ';'
  //            | ref ('->' ref)+ ';'
  bool Statement() {
    if (token_.type != Token::Type::kWord &&
        token_.type != Token::Type::kString) {
      return Fail(Errno::kEinval,
                  "expected a declaration, a 'set' statement, or a chain");
    }
    if (token_.type == Token::Type::kWord && token_.text == "set") {
      return SetStatement();
    }
    const Token first = token_;
    if (!NextToken()) {
      return false;
    }
    if (token_.type == Token::Type::kColonColon) {
      return Declaration(first);
    }
    return Chain(first);
  }

  bool SetStatement() {
    const Token set_token = token_;
    if (!NextToken()) {
      return false;
    }
    if (token_.type != Token::Type::kWord) {
      return Fail(Errno::kEinval, "expected a setting name after 'set'");
    }
    ScenarioSetting setting;
    setting.key = token_.text;
    setting.line = set_token.line;
    setting.column = token_.column;
    const Token key_token = token_;
    if (!NextToken()) {
      return false;
    }
    if (token_.type != Token::Type::kWord &&
        token_.type != Token::Type::kString) {
      return Fail(Errno::kEinval,
                  "expected a value for setting '" + setting.key + "'");
    }
    setting.value = token_.text;
    const Token value_token = token_;
    if (!NextToken()) {
      return false;
    }
    if (!Expect(Token::Type::kSemi, "';'")) {
      return false;
    }

    const SettingSpec* spec = nullptr;
    for (const SettingSpec& candidate : kKnownSettings) {
      if (candidate.key == setting.key) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      return FailAt(Errno::kEinval, "unknown setting '" + setting.key + "'",
                    key_token.line, key_token.column);
    }
    switch (spec->kind) {
      case SettingSpec::Kind::kU64:
        if (!ParsesAsU64(setting.value)) {
          return FailAt(Errno::kEinval,
                        "setting '" + setting.key +
                            "' expects an unsigned integer, got '" +
                            setting.value + "'",
                        value_token.line, value_token.column);
        }
        break;
      case SettingSpec::Kind::kF64:
        if (!ParsesAsF64(setting.value)) {
          return FailAt(Errno::kEinval,
                        "setting '" + setting.key + "' expects a number, got '" +
                            setting.value + "'",
                        value_token.line, value_token.column);
        }
        break;
      case SettingSpec::Kind::kBool:
        if (setting.value != "true" && setting.value != "false") {
          return FailAt(Errno::kEinval,
                        "setting '" + setting.key +
                            "' expects true or false, got '" + setting.value +
                            "'",
                        value_token.line, value_token.column);
        }
        break;
      case SettingSpec::Kind::kConfigName:
        if (!TryConfigByName(setting.value).has_value()) {
          return FailAt(Errno::kEfault,
                        "unknown config '" + setting.value +
                            "'; known configs: " + NamedConfigKeyList(),
                        value_token.line, value_token.column);
        }
        break;
      case SettingSpec::Kind::kWord:
        if (setting.key == "pt_placement" && setting.value != "local" &&
            setting.value != "replicate" && setting.value != "migrate") {
          return FailAt(
              Errno::kEinval,
              "setting 'pt_placement' expects local, replicate, or migrate",
              setting.line, setting.column);
        }
        if (setting.key == "shootdown" && setting.value != "immediate" &&
            setting.value != "batched") {
          return FailAt(Errno::kEinval,
                        "setting 'shootdown' expects immediate or batched",
                        value_token.line, value_token.column);
        }
        break;
    }
    result_.graph.settings.push_back(std::move(setting));
    return true;
  }

  // Already consumed `name` and sitting on '::'.
  bool Declaration(const Token& name_token) {
    if (name_token.quoted) {
      return FailAt(Errno::kEinval, "element names must be bare words",
                    name_token.line, name_token.column);
    }
    if (FindElement(name_token.text) >= 0) {
      return FailAt(Errno::kEinval,
                    "duplicate element name '" + name_token.text + "'",
                    name_token.line, name_token.column);
    }
    if (!NextToken()) {  // past '::'
      return false;
    }
    if (token_.type != Token::Type::kWord) {
      return Fail(Errno::kEinval, "expected an element kind after '::'");
    }
    ElementSpec spec;
    spec.name = name_token.text;
    spec.kind = token_.text;
    spec.line = token_.line;
    spec.column = token_.column;
    if (!NextToken()) {
      return false;
    }
    if (!Params(&spec.params)) {
      return false;
    }
    if (!Expect(Token::Type::kSemi, "';'")) {
      return false;
    }
    result_.graph.elements.push_back(std::move(spec));
    return true;
  }

  // '(' key value (',' key value)* ')' — or nothing at all.
  bool Params(ElementParams* params) {
    if (token_.type != Token::Type::kLparen) {
      return true;  // parameterless: `a :: DiurnalLoad;`
    }
    if (!NextToken()) {
      return false;
    }
    if (token_.type == Token::Type::kRparen) {
      return NextToken();
    }
    while (true) {
      if (token_.type != Token::Type::kWord) {
        return Fail(Errno::kEinval, "expected a parameter name");
      }
      ElementParam param;
      param.key = token_.text;
      if (!NextToken()) {
        return false;
      }
      if (token_.type != Token::Type::kWord &&
          token_.type != Token::Type::kString) {
        return Fail(Errno::kEinval,
                    "expected a value for parameter '" + param.key + "'");
      }
      param.value = token_.text;
      param.quoted = token_.quoted;
      params->items.push_back(std::move(param));
      if (!NextToken()) {
        return false;
      }
      if (token_.type == Token::Type::kComma) {
        if (!NextToken()) {
          return false;
        }
        continue;
      }
      if (token_.type == Token::Type::kRparen) {
        return NextToken();
      }
      return Fail(Errno::kEinval, "expected ',' or ')' in parameter list");
    }
  }

  // Already consumed the first ref's leading word; `first` is that token.
  bool Chain(const Token& first) {
    int32_t previous = -1;
    if (!Ref(first, &previous)) {
      return false;
    }
    if (token_.type != Token::Type::kArrow) {
      return Fail(Errno::kEinval, "expected '::' or '->'");
    }
    while (token_.type == Token::Type::kArrow) {
      if (!NextToken()) {
        return false;
      }
      if (token_.type != Token::Type::kWord) {
        return Fail(Errno::kEinval, "expected an element after '->'");
      }
      const Token next_ref = token_;
      if (!NextToken()) {
        return false;
      }
      int32_t target = -1;
      if (!Ref(next_ref, &target)) {
        return false;
      }
      EdgeSpec edge;
      edge.from = static_cast<uint32_t>(previous);
      edge.to = static_cast<uint32_t>(target);
      result_.graph.edges.push_back(edge);
      previous = target;
    }
    return Expect(Token::Type::kSemi, "';'");
  }

  // A chain ref: a declared name, or an inline `Kind(params)` anonymous
  // declaration. `word` has been consumed; the cursor sits just past it.
  bool Ref(const Token& word, int32_t* index) {
    if (token_.type == Token::Type::kLparen) {
      ElementSpec spec;
      spec.kind = word.text;
      spec.line = word.line;
      spec.column = word.column;
      spec.name = AnonymousName(word.text);
      if (!Params(&spec.params)) {
        return false;
      }
      *index = static_cast<int32_t>(result_.graph.elements.size());
      result_.graph.elements.push_back(std::move(spec));
      return true;
    }
    const int32_t found = FindElement(word.text);
    if (found < 0) {
      return FailAt(Errno::kEfault,
                    "unknown element '" + word.text +
                        "' (declare it with `name :: Kind(...);` first)",
                    word.line, word.column);
    }
    *index = found;
    return true;
  }

  int32_t FindElement(std::string_view name) const {
    for (size_t i = 0; i < result_.graph.elements.size(); ++i) {
      if (result_.graph.elements[i].name == name) {
        return static_cast<int32_t>(i);
      }
    }
    return -1;
  }

  std::string AnonymousName(const std::string& kind) {
    for (uint32_t n = static_cast<uint32_t>(result_.graph.elements.size());;
         ++n) {
      std::string candidate = "_" + kind + std::to_string(n);
      if (FindElement(candidate) < 0) {
        return candidate;
      }
    }
  }

  // Instantiate + Configure every element once against the registry, so
  // unknown kinds and bad parameters are rejected with their source line.
  void Validate() {
    if (registry_ == nullptr || !result_.ok()) {
      return;
    }
    for (const ElementSpec& spec : result_.graph.elements) {
      std::unique_ptr<WorkloadElement> element = registry_->Create(spec.kind);
      if (element == nullptr) {
        FailAt(Errno::kEfault,
               "unknown element kind '" + spec.kind +
                   "'; known kinds: " + registry_->KindList(),
               spec.line, spec.column);
        return;
      }
      const ScenarioResult configured = element->Configure(spec.params);
      if (!configured.ok()) {
        FailAt(configured.error, spec.kind + ": " + configured.message,
               spec.line, spec.column);
        return;
      }
    }
  }

  Lexer lexer_;
  Token token_;
  const ElementRegistry* registry_;
  ScenarioParseResult result_;
};

// True when `value` needs quotes to survive a reparse.
bool NeedsQuotes(const std::string& value) {
  if (value.empty()) {
    return true;
  }
  for (size_t i = 0; i < value.size(); ++i) {
    const char next = i + 1 < value.size() ? value[i + 1] : '\0';
    if (!IsWordChar(value[i], next)) {
      return true;
    }
  }
  return false;
}

std::string QuoteIfNeeded(const std::string& value, bool was_quoted) {
  if (!was_quoted && !NeedsQuotes(value)) {
    return value;
  }
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

const ScenarioSetting* ScenarioGraph::FindSetting(std::string_view key) const {
  for (const ScenarioSetting& setting : settings) {
    if (setting.key == key) {
      return &setting;
    }
  }
  return nullptr;
}

std::string ScenarioGraph::SettingStr(std::string_view key,
                                      std::string_view fallback) const {
  const ScenarioSetting* setting = FindSetting(key);
  return setting == nullptr ? std::string(fallback) : setting->value;
}

uint64_t ScenarioGraph::SettingU64(std::string_view key,
                                   uint64_t fallback) const {
  const ScenarioSetting* setting = FindSetting(key);
  if (setting == nullptr || !ParsesAsU64(setting->value)) {
    return fallback;
  }
  return std::strtoull(setting->value.c_str(), nullptr, 10);
}

double ScenarioGraph::SettingF64(std::string_view key, double fallback) const {
  const ScenarioSetting* setting = FindSetting(key);
  if (setting == nullptr || !ParsesAsF64(setting->value)) {
    return fallback;
  }
  return std::strtod(setting->value.c_str(), nullptr);
}

bool ScenarioGraph::SettingBool(std::string_view key, bool fallback) const {
  const ScenarioSetting* setting = FindSetting(key);
  if (setting == nullptr) {
    return fallback;
  }
  return setting->value == "true";
}

std::string ScenarioGraph::ToString() const {
  std::string out;
  for (const ScenarioSetting& setting : settings) {
    out += "set " + setting.key + " " + QuoteIfNeeded(setting.value, false) +
           ";\n";
  }
  if (!settings.empty() && !elements.empty()) {
    out += "\n";
  }
  for (const ElementSpec& element : elements) {
    out += element.name + " :: " + element.kind;
    if (!element.params.items.empty()) {
      out += "(";
      for (size_t i = 0; i < element.params.items.size(); ++i) {
        const ElementParam& param = element.params.items[i];
        out += param.key + " " + QuoteIfNeeded(param.value, param.quoted);
        if (i + 1 < element.params.items.size()) {
          out += ", ";
        }
      }
      out += ")";
    }
    out += ";\n";
  }
  if (!edges.empty()) {
    out += "\n";
  }
  for (const EdgeSpec& edge : edges) {
    out += elements[edge.from].name + " -> " + elements[edge.to].name + ";\n";
  }
  return out;
}

std::string ScenarioParseResult::FormatError(std::string_view origin) const {
  std::ostringstream out;
  out << origin << ":" << line << ":" << column << ": error: " << message
      << " (" << ErrnoName(error) << ")";
  return out.str();
}

ScenarioParseResult ParseScenario(std::string_view text, std::string name,
                                  const ElementRegistry* registry) {
  Parser parser(text, std::move(name), registry);
  return parser.Run();
}

ScenarioParseResult ParseScenarioFile(const std::string& path,
                                      const ElementRegistry* registry) {
  std::ifstream file(path);
  if (!file) {
    ScenarioParseResult result;
    result.error = Errno::kEfault;
    result.message = "cannot open scenario file '" + path + "'";
    return result;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseScenario(buffer.str(), ScenarioNameFromPath(path), registry);
}

std::string ScenarioNameFromPath(std::string_view path) {
  const size_t slash = path.find_last_of("/\\");
  std::string_view stem =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  const size_t dot = stem.rfind('.');
  if (dot != std::string_view::npos && dot > 0) {
    stem = stem.substr(0, dot);
  }
  return std::string(stem);
}

}  // namespace sat
