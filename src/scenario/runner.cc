#include "src/scenario/runner.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

namespace sat {

namespace {

constexpr uint64_t kMb = 1024ull * 1024;

// Smoke scaling for the tick budget: same never-to-zero rule the
// per-element populations use.
uint32_t ScaledTicks(uint64_t ticks, double scale) {
  if (ticks == 0 || scale >= 1.0) {
    return static_cast<uint32_t>(ticks);
  }
  const uint64_t scaled =
      static_cast<uint64_t>(static_cast<double>(ticks) * scale);
  return static_cast<uint32_t>(scaled == 0 ? 1 : scaled);
}

}  // namespace

SystemConfig ScenarioSystemConfig(const ScenarioGraph& graph) {
  SystemConfig config =
      ConfigByName(graph.SettingStr("config", "shared-ptp-tlb"));
  config.phys_bytes =
      graph.SettingU64("phys_mb", config.phys_bytes / kMb) * kMb;
  config.swap_bytes =
      graph.SettingU64("swap_mb", config.swap_bytes / kMb) * kMb;
  config.num_cores =
      static_cast<uint32_t>(graph.SettingU64("cores", config.num_cores));
  config.num_nodes =
      static_cast<uint32_t>(graph.SettingU64("nodes", config.num_nodes));
  if (graph.SettingStr("shootdown",
                       ShootdownPolicyName(config.shootdown_policy)) ==
      "batched") {
    config.shootdown_policy = ShootdownPolicy::kBatched;
  }
  const std::string placement = graph.SettingStr(
      "pt_placement", PtPlacementName(config.pt_placement));
  if (placement == "replicate") {
    config.pt_placement = PtPlacement::kReplicate;
  } else if (placement == "migrate") {
    config.pt_placement = PtPlacement::kMigrate;
  } else if (placement == "local") {
    config.pt_placement = PtPlacement::kLocal;
  }
  config.ksm = graph.SettingBool("ksm", config.ksm);
  config.scrub = graph.SettingBool("scrub", config.scrub);
  config.huge = graph.SettingBool("huge", config.huge);
  config.seed = graph.SettingU64("seed", config.seed);
  return config;
}

void ApplyScenarioChaos(const ScenarioGraph& graph, System* system) {
  const double chaos_pte = graph.SettingF64("chaos_pte", 0.0);
  const double chaos_alloc = graph.SettingF64("chaos_alloc", 0.0);
  FaultInjector& injector = system->kernel().fault_injector();
  if (chaos_pte > 0.0) {
    FaultRule rule;
    rule.probability = chaos_pte;
    injector.SetCorruptRule(CorruptSite::kPteWord, rule);
  }
  if (chaos_alloc > 0.0) {
    FaultRule rule;
    rule.probability = chaos_alloc;
    for (uint32_t site = 0;
         site < static_cast<uint32_t>(AllocSite::kCount); ++site) {
      injector.SetRule(static_cast<AllocSite>(site), rule);
    }
  }
}

uint32_t ScenarioShardCount(const ScenarioGraph& graph) {
  const uint64_t shards = graph.SettingU64("shards", 1);
  return static_cast<uint32_t>(std::max<uint64_t>(1, shards));
}

ScenarioRunOutcome RunScenarioOnSystem(System* system,
                                       const ScenarioGraph& graph,
                                       const ElementRegistry& registry,
                                       const ScenarioRunConfig& run) {
  ScenarioRunOutcome outcome;

  // Instantiate and configure the element graph. The parser already
  // validated both steps when this graph came from ParseScenario with a
  // registry, so failures here mean the runtime registry differs.
  std::vector<std::unique_ptr<WorkloadElement>> elements;
  elements.reserve(graph.elements.size());
  for (const ElementSpec& spec : graph.elements) {
    std::unique_ptr<WorkloadElement> element = registry.Create(spec.kind);
    if (element == nullptr) {
      outcome.status = ScenarioResult::Err(
          Errno::kEfault, "unknown element kind '" + spec.kind +
                              "'; known kinds: " + registry.KindList());
      return outcome;
    }
    element->set_name(spec.name);
    const ScenarioResult configured = element->Configure(spec.params);
    if (!configured.ok()) {
      outcome.status = ScenarioResult::Err(
          configured.error, spec.name + ": " + configured.message);
      return outcome;
    }
    elements.push_back(std::move(element));
  }
  for (const EdgeSpec& edge : graph.edges) {
    elements[edge.from]->ConnectOutput(elements[edge.to].get());
  }

  ScenarioContext ctx(system, run.rng_seed, run.shard_index, run.shard_count,
                      run.scale);
  const uint32_t ticks = ScaledTicks(graph.SettingU64("ticks", 100),
                                     run.scale);
  for (uint32_t tick = 0; tick < ticks; ++tick) {
    ctx.set_tick(tick);
    for (const std::unique_ptr<WorkloadElement>& element : elements) {
      element->Tick(ctx);
    }
    ctx.stats().ticks_run++;
    bool all_done = true;
    for (const std::unique_ptr<WorkloadElement>& element : elements) {
      if (!element->Done(ctx)) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      break;
    }
  }

  // Teardown: disarm chaos first (no fresh damage while draining), give
  // scrubd a chance to repair whatever the run's bit-flips left behind,
  // then exit every process the scenario spawned and audit what remains.
  FaultInjector& injector = system->kernel().fault_injector();
  for (uint32_t site = 0; site < static_cast<uint32_t>(AllocSite::kCount);
       ++site) {
    injector.SetRule(static_cast<AllocSite>(site), FaultRule{});
  }
  for (uint32_t site = 0; site < static_cast<uint32_t>(CorruptSite::kCount);
       ++site) {
    injector.SetCorruptRule(static_cast<CorruptSite>(site), FaultRule{});
  }
  if (graph.SettingF64("chaos_pte", 0.0) > 0.0) {
    for (uint32_t pass = 0; pass < 16; ++pass) {
      if (system->kernel().RunScrubPass() == 0) {
        break;
      }
    }
  }
  ctx.ExitAll();

  const AuditReport audit = system->kernel().AuditInvariants();
  outcome.audit_ok = audit.ok();
  outcome.audit_checks = audit.checks;
  if (!audit.ok()) {
    outcome.audit_report = audit.ToString();
  }
  outcome.stats = ctx.stats();
  return outcome;
}

}  // namespace sat
