#include "src/scenario/registry.h"

#include <algorithm>

namespace sat {

void ElementRegistry::Register(std::string kind, Factory factory) {
  for (Entry& entry : entries_) {
    if (entry.kind == kind) {
      entry.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back(Entry{std::move(kind), std::move(factory)});
}

std::unique_ptr<WorkloadElement> ElementRegistry::Create(
    std::string_view kind) const {
  for (const Entry& entry : entries_) {
    if (entry.kind == kind) {
      return entry.factory();
    }
  }
  return nullptr;
}

bool ElementRegistry::Has(std::string_view kind) const {
  for (const Entry& entry : entries_) {
    if (entry.kind == kind) {
      return true;
    }
  }
  return false;
}

std::string ElementRegistry::KindList() const {
  std::vector<std::string> kinds;
  kinds.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    kinds.push_back(entry.kind);
  }
  std::sort(kinds.begin(), kinds.end());
  std::string out;
  for (size_t i = 0; i < kinds.size(); ++i) {
    out += kinds[i];
    if (i + 1 < kinds.size()) {
      out += ", ";
    }
  }
  return out;
}

const ElementRegistry& ElementRegistry::Default() {
  static const ElementRegistry* registry = [] {
    auto* r = new ElementRegistry();
    RegisterBuiltinElements(r);
    return r;
  }();
  return *registry;
}

}  // namespace sat
