#include "src/scenario/element.h"

#include <cerrno>
#include <cstdlib>

namespace sat {

// ---------------------------------------------------------------------------
// ParamReader
// ---------------------------------------------------------------------------

const ElementParam* ParamReader::Take(std::string_view key) {
  for (size_t i = 0; i < params_.items.size(); ++i) {
    if (params_.items[i].key == key) {
      seen_[i] = true;
      return &params_.items[i];
    }
  }
  return nullptr;
}

void ParamReader::BadValue(const ElementParam& param,
                           std::string_view expected) {
  if (first_error_.empty()) {
    first_error_ = "parameter '" + param.key + "' expects " +
                   std::string(expected) + ", got '" + param.value + "'";
  }
}

uint64_t ParamReader::U64(std::string_view key, uint64_t fallback) {
  const ElementParam* param = Take(key);
  if (param == nullptr) {
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(param->value.c_str(), &end, 10);
  if (errno != 0 || end == param->value.c_str() || *end != '\0') {
    BadValue(*param, "an unsigned integer");
    return fallback;
  }
  return static_cast<uint64_t>(v);
}

double ParamReader::F64(std::string_view key, double fallback) {
  const ElementParam* param = Take(key);
  if (param == nullptr) {
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(param->value.c_str(), &end);
  if (errno != 0 || end == param->value.c_str() || *end != '\0') {
    BadValue(*param, "a number");
    return fallback;
  }
  return v;
}

bool ParamReader::Bool(std::string_view key, bool fallback) {
  const ElementParam* param = Take(key);
  if (param == nullptr) {
    return fallback;
  }
  if (param->value == "true" || param->value == "1") {
    return true;
  }
  if (param->value == "false" || param->value == "0") {
    return false;
  }
  BadValue(*param, "true or false");
  return fallback;
}

std::string ParamReader::Str(std::string_view key, std::string_view fallback) {
  const ElementParam* param = Take(key);
  return param == nullptr ? std::string(fallback) : param->value;
}

ScenarioResult ParamReader::Finish() const {
  if (!first_error_.empty()) {
    return ScenarioResult::Err(Errno::kEinval, first_error_);
  }
  for (size_t i = 0; i < params_.items.size(); ++i) {
    if (!seen_[i]) {
      return ScenarioResult::Err(
          Errno::kEinval, "unknown parameter '" + params_.items[i].key + "'");
    }
  }
  return ScenarioResult::Ok();
}

// ---------------------------------------------------------------------------
// ScenarioContext
// ---------------------------------------------------------------------------

Task* ScenarioContext::SpawnProcess(const std::string& name) {
  Task* task = system_->android().ForkApp(name);
  if (task == nullptr) {
    return nullptr;
  }
  processes_.push_back(task);
  stats_.processes_spawned++;
  // Spread the population over the simulated cores so multi-core
  // scenarios exercise cross-core shootdowns, not just core 0.
  const uint32_t core = next_core_;
  next_core_ = (next_core_ + 1) % kernel().num_cores();
  kernel().SetCurrent(*task, core);
  return task;
}

Task* ScenarioContext::SpawnChild(Task& parent, const std::string& name) {
  const ForkOutcome outcome = kernel().Fork(parent, name);
  if (!outcome.ok()) {
    return nullptr;
  }
  processes_.push_back(outcome.child);
  stats_.processes_spawned++;
  const uint32_t core = next_core_;
  next_core_ = (next_core_ + 1) % kernel().num_cores();
  kernel().SetCurrent(*outcome.child, core);
  return outcome.child;
}

AppRunner& ScenarioContext::app_runner() {
  if (app_runner_ == nullptr) {
    app_runner_ = std::make_unique<AppRunner>(&system_->android());
  }
  return *app_runner_;
}

void ScenarioContext::ExitProcess(Task* task) {
  if (task == nullptr) {
    return;
  }
  if (!task->alive) {
    // The OOM killer or an oops got there first; the kernel already
    // counted that death, the element just loses the handle.
    return;
  }
  kernel().Exit(*task);
  stats_.processes_exited++;
}

void ScenarioContext::ExitAll() {
  for (Task* task : processes_) {
    if (task->alive) {
      kernel().Exit(*task);
      stats_.processes_exited++;
    } else if (!task->oom_killed && !task->oops_killed) {
      // Exited by an element on purpose — already counted.
    } else {
      stats_.processes_lost++;
    }
  }
  processes_.clear();
}

uint32_t ScenarioContext::live_processes() const {
  uint32_t live = 0;
  for (const Task* task : processes_) {
    if (task->alive) {
      live++;
    }
  }
  return live;
}

}  // namespace sat
