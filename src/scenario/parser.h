// The Click-style scenario DSL (DESIGN.md 5k).
//
// A .scn file declares workload elements, wires them into a graph, and
// sets run-level knobs:
//
//   # an app-server farm under memory pressure
//   set config shared-ptp-tlb;
//   set ticks 200;
//   set shards 8;
//   set swap_mb 64;
//
//   storm :: ForkStorm(count 2000, rate 50);
//   churn :: MemoryChurn(pages 4096, dirty 0.3);
//   storm -> churn -> SwapThrash(pages 2048);
//
// Statements end in ';'. `name :: Kind(key value, ...)` declares a named
// element; `a -> b -> c` wires output ports left to right, and a Kind(...)
// appearing inline in a chain declares an anonymous element in place.
// `#` and `//` start comments. Parameters are `key value` pairs (Click's
// convention); values are numbers, bare words, or "quoted strings".
//
// Parsing is errno-style, consistent with the PR-4 syscall surface: the
// result carries the graph plus an Errno, the 1-based line/column of the
// first error, and a human-readable message. Unknown element kinds and
// unknown/ill-typed parameters are rejected at parse time (the parser
// validates against the element registry), so a bad scenario fails before
// any System is built.

#ifndef SRC_SCENARIO_PARSER_H_
#define SRC_SCENARIO_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/scenario/element.h"

namespace sat {

class ElementRegistry;

// One `set key value;` statement, in file order.
struct ScenarioSetting {
  std::string key;
  std::string value;
  int line = 0;
  int column = 0;
};

// One element declaration (named or anonymous), in file order.
struct ElementSpec {
  std::string name;  // declared name, or generated "_<kind><n>" for inline
  std::string kind;
  ElementParams params;
  int line = 0;
  int column = 0;
};

// One wire `from -> to`, by element index, in file order.
struct EdgeSpec {
  uint32_t from = 0;
  uint32_t to = 0;
};

// The parsed scenario: pure data. Instantiation against a registry
// happens per shard in the runner, so one graph drives many Systems.
struct ScenarioGraph {
  std::string name;  // file stem, or caller-supplied for inline text
  std::vector<ScenarioSetting> settings;
  std::vector<ElementSpec> elements;
  std::vector<EdgeSpec> edges;

  const ScenarioSetting* FindSetting(std::string_view key) const;
  std::string SettingStr(std::string_view key, std::string_view fallback) const;
  uint64_t SettingU64(std::string_view key, uint64_t fallback) const;
  double SettingF64(std::string_view key, double fallback) const;
  bool SettingBool(std::string_view key, bool fallback) const;

  // Canonical text form: settings, then declarations, then one edge per
  // statement. Parse(ToString()) reproduces the graph exactly — the
  // round-trip contract scenario_test enforces for every checked-in file.
  std::string ToString() const;
};

// Parse outcome, errno-style (satellite of ISSUE 9): `graph` is only
// meaningful when ok(). kEinval = syntax error or bad parameter;
// kEfault = reference to an unknown element name or kind.
struct ScenarioParseResult {
  ScenarioGraph graph;
  Errno error = Errno::kOk;
  int line = 0;
  int column = 0;
  std::string message;

  bool ok() const { return error == Errno::kOk; }

  // "fork_storm.scn:12:7: error: unknown element kind 'FrokStorm' (EINVAL)"
  std::string FormatError(std::string_view origin) const;
};

// Parses scenario text. When `registry` is non-null (the default path
// passes ElementRegistry::Default()), element kinds and parameters are
// validated by instantiating and configuring each element once.
ScenarioParseResult ParseScenario(std::string_view text, std::string name,
                                  const ElementRegistry* registry);

// Reads and parses a .scn file; a missing/unreadable file reports kEfault
// at line 0. The graph name is the file stem ("scenarios/a_b.scn" -> "a_b").
ScenarioParseResult ParseScenarioFile(const std::string& path,
                                      const ElementRegistry* registry);

// The file stem used for graph and result-file naming.
std::string ScenarioNameFromPath(std::string_view path);

}  // namespace sat

#endif  // SRC_SCENARIO_PARSER_H_
