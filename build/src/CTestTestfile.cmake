# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("arch")
subdirs("stats")
subdirs("mem")
subdirs("pt")
subdirs("vm")
subdirs("tlb")
subdirs("cache")
subdirs("hw")
subdirs("proc")
subdirs("loader")
subdirs("android")
subdirs("workload")
subdirs("core")
