# Empty compiler generated dependencies file for sat_workload.
# This may be replaced when dependencies are built.
