file(REMOVE_RECURSE
  "CMakeFiles/sat_workload.dir/analysis.cc.o"
  "CMakeFiles/sat_workload.dir/analysis.cc.o.d"
  "CMakeFiles/sat_workload.dir/app_profile.cc.o"
  "CMakeFiles/sat_workload.dir/app_profile.cc.o.d"
  "CMakeFiles/sat_workload.dir/footprint.cc.o"
  "CMakeFiles/sat_workload.dir/footprint.cc.o.d"
  "libsat_workload.a"
  "libsat_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
