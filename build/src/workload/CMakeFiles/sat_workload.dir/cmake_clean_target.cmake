file(REMOVE_RECURSE
  "libsat_workload.a"
)
