# Empty dependencies file for sat_cache.
# This may be replaced when dependencies are built.
