file(REMOVE_RECURSE
  "CMakeFiles/sat_cache.dir/cache.cc.o"
  "CMakeFiles/sat_cache.dir/cache.cc.o.d"
  "libsat_cache.a"
  "libsat_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
