file(REMOVE_RECURSE
  "libsat_cache.a"
)
