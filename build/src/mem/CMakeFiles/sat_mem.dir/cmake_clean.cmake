file(REMOVE_RECURSE
  "CMakeFiles/sat_mem.dir/page_cache.cc.o"
  "CMakeFiles/sat_mem.dir/page_cache.cc.o.d"
  "CMakeFiles/sat_mem.dir/phys_memory.cc.o"
  "CMakeFiles/sat_mem.dir/phys_memory.cc.o.d"
  "libsat_mem.a"
  "libsat_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
