file(REMOVE_RECURSE
  "libsat_mem.a"
)
