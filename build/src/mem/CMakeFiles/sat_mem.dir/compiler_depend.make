# Empty compiler generated dependencies file for sat_mem.
# This may be replaced when dependencies are built.
