file(REMOVE_RECURSE
  "CMakeFiles/sat_vm.dir/mm.cc.o"
  "CMakeFiles/sat_vm.dir/mm.cc.o.d"
  "CMakeFiles/sat_vm.dir/reclaim.cc.o"
  "CMakeFiles/sat_vm.dir/reclaim.cc.o.d"
  "CMakeFiles/sat_vm.dir/smaps.cc.o"
  "CMakeFiles/sat_vm.dir/smaps.cc.o.d"
  "CMakeFiles/sat_vm.dir/vm_area.cc.o"
  "CMakeFiles/sat_vm.dir/vm_area.cc.o.d"
  "CMakeFiles/sat_vm.dir/vm_manager.cc.o"
  "CMakeFiles/sat_vm.dir/vm_manager.cc.o.d"
  "libsat_vm.a"
  "libsat_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
