
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/mm.cc" "src/vm/CMakeFiles/sat_vm.dir/mm.cc.o" "gcc" "src/vm/CMakeFiles/sat_vm.dir/mm.cc.o.d"
  "/root/repo/src/vm/reclaim.cc" "src/vm/CMakeFiles/sat_vm.dir/reclaim.cc.o" "gcc" "src/vm/CMakeFiles/sat_vm.dir/reclaim.cc.o.d"
  "/root/repo/src/vm/smaps.cc" "src/vm/CMakeFiles/sat_vm.dir/smaps.cc.o" "gcc" "src/vm/CMakeFiles/sat_vm.dir/smaps.cc.o.d"
  "/root/repo/src/vm/vm_area.cc" "src/vm/CMakeFiles/sat_vm.dir/vm_area.cc.o" "gcc" "src/vm/CMakeFiles/sat_vm.dir/vm_area.cc.o.d"
  "/root/repo/src/vm/vm_manager.cc" "src/vm/CMakeFiles/sat_vm.dir/vm_manager.cc.o" "gcc" "src/vm/CMakeFiles/sat_vm.dir/vm_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/sat_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/sat_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sat_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
