file(REMOVE_RECURSE
  "libsat_vm.a"
)
