# Empty compiler generated dependencies file for sat_vm.
# This may be replaced when dependencies are built.
