file(REMOVE_RECURSE
  "CMakeFiles/sat_arch.dir/domain.cc.o"
  "CMakeFiles/sat_arch.dir/domain.cc.o.d"
  "CMakeFiles/sat_arch.dir/fault.cc.o"
  "CMakeFiles/sat_arch.dir/fault.cc.o.d"
  "CMakeFiles/sat_arch.dir/pte.cc.o"
  "CMakeFiles/sat_arch.dir/pte.cc.o.d"
  "libsat_arch.a"
  "libsat_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
