# Empty compiler generated dependencies file for sat_arch.
# This may be replaced when dependencies are built.
