
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/domain.cc" "src/arch/CMakeFiles/sat_arch.dir/domain.cc.o" "gcc" "src/arch/CMakeFiles/sat_arch.dir/domain.cc.o.d"
  "/root/repo/src/arch/fault.cc" "src/arch/CMakeFiles/sat_arch.dir/fault.cc.o" "gcc" "src/arch/CMakeFiles/sat_arch.dir/fault.cc.o.d"
  "/root/repo/src/arch/pte.cc" "src/arch/CMakeFiles/sat_arch.dir/pte.cc.o" "gcc" "src/arch/CMakeFiles/sat_arch.dir/pte.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
