file(REMOVE_RECURSE
  "libsat_arch.a"
)
