file(REMOVE_RECURSE
  "libsat_pt.a"
)
