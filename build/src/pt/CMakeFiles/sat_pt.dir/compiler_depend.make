# Empty compiler generated dependencies file for sat_pt.
# This may be replaced when dependencies are built.
