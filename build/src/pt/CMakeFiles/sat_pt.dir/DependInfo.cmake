
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pt/page_table.cc" "src/pt/CMakeFiles/sat_pt.dir/page_table.cc.o" "gcc" "src/pt/CMakeFiles/sat_pt.dir/page_table.cc.o.d"
  "/root/repo/src/pt/ptp.cc" "src/pt/CMakeFiles/sat_pt.dir/ptp.cc.o" "gcc" "src/pt/CMakeFiles/sat_pt.dir/ptp.cc.o.d"
  "/root/repo/src/pt/rmap.cc" "src/pt/CMakeFiles/sat_pt.dir/rmap.cc.o" "gcc" "src/pt/CMakeFiles/sat_pt.dir/rmap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/sat_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sat_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
