file(REMOVE_RECURSE
  "CMakeFiles/sat_pt.dir/page_table.cc.o"
  "CMakeFiles/sat_pt.dir/page_table.cc.o.d"
  "CMakeFiles/sat_pt.dir/ptp.cc.o"
  "CMakeFiles/sat_pt.dir/ptp.cc.o.d"
  "CMakeFiles/sat_pt.dir/rmap.cc.o"
  "CMakeFiles/sat_pt.dir/rmap.cc.o.d"
  "libsat_pt.a"
  "libsat_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
