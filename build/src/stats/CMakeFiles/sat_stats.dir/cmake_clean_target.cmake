file(REMOVE_RECURSE
  "libsat_stats.a"
)
