file(REMOVE_RECURSE
  "CMakeFiles/sat_stats.dir/cost_model.cc.o"
  "CMakeFiles/sat_stats.dir/cost_model.cc.o.d"
  "CMakeFiles/sat_stats.dir/counters.cc.o"
  "CMakeFiles/sat_stats.dir/counters.cc.o.d"
  "CMakeFiles/sat_stats.dir/summary.cc.o"
  "CMakeFiles/sat_stats.dir/summary.cc.o.d"
  "libsat_stats.a"
  "libsat_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
