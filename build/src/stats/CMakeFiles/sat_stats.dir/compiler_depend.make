# Empty compiler generated dependencies file for sat_stats.
# This may be replaced when dependencies are built.
