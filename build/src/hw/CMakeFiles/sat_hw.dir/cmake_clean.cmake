file(REMOVE_RECURSE
  "CMakeFiles/sat_hw.dir/core.cc.o"
  "CMakeFiles/sat_hw.dir/core.cc.o.d"
  "CMakeFiles/sat_hw.dir/machine.cc.o"
  "CMakeFiles/sat_hw.dir/machine.cc.o.d"
  "libsat_hw.a"
  "libsat_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
