file(REMOVE_RECURSE
  "libsat_hw.a"
)
