# Empty dependencies file for sat_hw.
# This may be replaced when dependencies are built.
