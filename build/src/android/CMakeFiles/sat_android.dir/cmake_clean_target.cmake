file(REMOVE_RECURSE
  "libsat_android.a"
)
