# Empty compiler generated dependencies file for sat_android.
# This may be replaced when dependencies are built.
