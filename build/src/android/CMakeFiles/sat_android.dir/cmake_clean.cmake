file(REMOVE_RECURSE
  "CMakeFiles/sat_android.dir/app_runner.cc.o"
  "CMakeFiles/sat_android.dir/app_runner.cc.o.d"
  "CMakeFiles/sat_android.dir/binder.cc.o"
  "CMakeFiles/sat_android.dir/binder.cc.o.d"
  "CMakeFiles/sat_android.dir/launch.cc.o"
  "CMakeFiles/sat_android.dir/launch.cc.o.d"
  "CMakeFiles/sat_android.dir/profiler.cc.o"
  "CMakeFiles/sat_android.dir/profiler.cc.o.d"
  "CMakeFiles/sat_android.dir/zygote.cc.o"
  "CMakeFiles/sat_android.dir/zygote.cc.o.d"
  "libsat_android.a"
  "libsat_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
