# Empty dependencies file for sat_tlb.
# This may be replaced when dependencies are built.
