file(REMOVE_RECURSE
  "CMakeFiles/sat_tlb.dir/tlb.cc.o"
  "CMakeFiles/sat_tlb.dir/tlb.cc.o.d"
  "libsat_tlb.a"
  "libsat_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
