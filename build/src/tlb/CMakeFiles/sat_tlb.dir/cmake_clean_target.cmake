file(REMOVE_RECURSE
  "libsat_tlb.a"
)
