file(REMOVE_RECURSE
  "libsat_core.a"
)
