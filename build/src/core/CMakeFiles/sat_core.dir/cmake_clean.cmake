file(REMOVE_RECURSE
  "CMakeFiles/sat_core.dir/sat.cc.o"
  "CMakeFiles/sat_core.dir/sat.cc.o.d"
  "libsat_core.a"
  "libsat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
