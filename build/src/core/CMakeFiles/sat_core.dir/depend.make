# Empty dependencies file for sat_core.
# This may be replaced when dependencies are built.
