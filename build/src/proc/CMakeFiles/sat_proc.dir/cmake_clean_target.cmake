file(REMOVE_RECURSE
  "libsat_proc.a"
)
