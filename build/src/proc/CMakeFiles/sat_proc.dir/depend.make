# Empty dependencies file for sat_proc.
# This may be replaced when dependencies are built.
