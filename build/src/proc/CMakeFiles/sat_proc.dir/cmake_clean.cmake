file(REMOVE_RECURSE
  "CMakeFiles/sat_proc.dir/kernel.cc.o"
  "CMakeFiles/sat_proc.dir/kernel.cc.o.d"
  "CMakeFiles/sat_proc.dir/scheduler.cc.o"
  "CMakeFiles/sat_proc.dir/scheduler.cc.o.d"
  "libsat_proc.a"
  "libsat_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
