file(REMOVE_RECURSE
  "CMakeFiles/sat_loader.dir/library.cc.o"
  "CMakeFiles/sat_loader.dir/library.cc.o.d"
  "CMakeFiles/sat_loader.dir/loader.cc.o"
  "CMakeFiles/sat_loader.dir/loader.cc.o.d"
  "libsat_loader.a"
  "libsat_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
