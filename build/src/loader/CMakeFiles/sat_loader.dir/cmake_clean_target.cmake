file(REMOVE_RECURSE
  "libsat_loader.a"
)
