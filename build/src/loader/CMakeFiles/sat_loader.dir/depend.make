# Empty dependencies file for sat_loader.
# This may be replaced when dependencies are built.
