file(REMOVE_RECURSE
  "CMakeFiles/android_test.dir/android_test.cc.o"
  "CMakeFiles/android_test.dir/android_test.cc.o.d"
  "android_test"
  "android_test.pdb"
  "android_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
