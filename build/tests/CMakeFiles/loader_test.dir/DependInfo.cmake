
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/loader_test.cc" "tests/CMakeFiles/loader_test.dir/loader_test.cc.o" "gcc" "tests/CMakeFiles/loader_test.dir/loader_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/sat_android.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sat_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/loader/CMakeFiles/sat_loader.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/sat_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/sat_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sat_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/sat_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sat_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/sat_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sat_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sat_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/sat_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
