file(REMOVE_RECURSE
  "CMakeFiles/largepage_test.dir/largepage_test.cc.o"
  "CMakeFiles/largepage_test.dir/largepage_test.cc.o.d"
  "largepage_test"
  "largepage_test.pdb"
  "largepage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/largepage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
