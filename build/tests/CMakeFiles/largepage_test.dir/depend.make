# Empty dependencies file for largepage_test.
# This may be replaced when dependencies are built.
