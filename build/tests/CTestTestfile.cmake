# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/pt_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/tlb_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/proc_test[1]_include.cmake")
include("/root/repo/build/tests/loader_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/android_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/largepage_test[1]_include.cmake")
include("/root/repo/build/tests/smp_test[1]_include.cmake")
include("/root/repo/build/tests/isolation_test[1]_include.cmake")
include("/root/repo/build/tests/reclaim_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/death_test[1]_include.cmake")
