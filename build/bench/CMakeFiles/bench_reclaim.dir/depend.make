# Empty dependencies file for bench_reclaim.
# This may be replaced when dependencies are built.
