# Empty dependencies file for bench_largepage.
# This may be replaced when dependencies are built.
