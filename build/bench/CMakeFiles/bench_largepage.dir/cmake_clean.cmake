file(REMOVE_RECURSE
  "CMakeFiles/bench_largepage.dir/bench_largepage.cc.o"
  "CMakeFiles/bench_largepage.dir/bench_largepage.cc.o.d"
  "bench_largepage"
  "bench_largepage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_largepage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
