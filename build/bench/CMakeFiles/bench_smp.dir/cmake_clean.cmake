file(REMOVE_RECURSE
  "CMakeFiles/bench_smp.dir/bench_smp.cc.o"
  "CMakeFiles/bench_smp.dir/bench_smp.cc.o.d"
  "bench_smp"
  "bench_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
