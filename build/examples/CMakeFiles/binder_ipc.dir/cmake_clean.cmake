file(REMOVE_RECURSE
  "CMakeFiles/binder_ipc.dir/binder_ipc.cpp.o"
  "CMakeFiles/binder_ipc.dir/binder_ipc.cpp.o.d"
  "binder_ipc"
  "binder_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binder_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
