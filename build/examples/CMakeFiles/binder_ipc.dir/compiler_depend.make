# Empty compiler generated dependencies file for binder_ipc.
# This may be replaced when dependencies are built.
