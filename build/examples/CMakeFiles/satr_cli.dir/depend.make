# Empty dependencies file for satr_cli.
# This may be replaced when dependencies are built.
