file(REMOVE_RECURSE
  "CMakeFiles/satr_cli.dir/satr_cli.cpp.o"
  "CMakeFiles/satr_cli.dir/satr_cli.cpp.o.d"
  "satr_cli"
  "satr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
