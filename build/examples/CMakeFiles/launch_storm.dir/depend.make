# Empty dependencies file for launch_storm.
# This may be replaced when dependencies are built.
