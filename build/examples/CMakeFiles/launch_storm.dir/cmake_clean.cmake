file(REMOVE_RECURSE
  "CMakeFiles/launch_storm.dir/launch_storm.cpp.o"
  "CMakeFiles/launch_storm.dir/launch_storm.cpp.o.d"
  "launch_storm"
  "launch_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/launch_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
